#include "engine/sharded_engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>

#include "core/encoding.h"
#include "obs/trace.h"
#include "wal/wal.h"

namespace mdts {

namespace {

/// Phase-attribution clock; read only on sampled batches/commits.
uint64_t NowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/// Sorted set of shard indices for the deadlock-free ordered acquisition:
/// insertion keeps the array ordered, membership is O(1) through the
/// bitmask for indices < 64 (a linear scan beyond). Bounded at kCapacity
/// entries; asking for more sets `overflow`, which callers answer by
/// locking every shard.
struct ShardLockSet {
  static constexpr size_t kCapacity = 64;
  uint32_t v[kCapacity];
  size_t count = 0;
  uint64_t mask = 0;
  bool overflow = false;

  uint32_t At(size_t q) const { return v[q]; }
  bool Has(uint32_t s) const {
    if (s < 64) return ((mask >> s) & 1) != 0;
    for (size_t q = 0; q < count; ++q) {
      if (v[q] == s) return true;
    }
    return false;
  }
  void Add(uint32_t s) {
    if (Has(s)) return;
    if (count == kCapacity) {
      overflow = true;
      return;
    }
    size_t q = count++;
    while (q > 0 && v[q - 1] > s) {
      v[q] = v[q - 1];
      --q;
    }
    v[q] = s;
    if (s < 64) mask |= uint64_t{1} << s;
  }
};

}  // namespace

ShardedMtkEngine::ShardedMtkEngine(const EngineOptions& options)
    : options_(options),
      num_shards_(options.num_shards < 1 ? 1 : options.num_shards),
      t0_(options.k) {
  assert(options_.k >= 1);
  options_.num_shards = num_shards_;
  active_k_.store(static_cast<uint32_t>(options_.k),
                  std::memory_order_relaxed);
  if ((num_shards_ & (num_shards_ - 1)) == 0) {
    shard_idx_mask_ = num_shards_ - 1;
  }
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_.emplace_back();
    shards_.back().index = static_cast<uint32_t>(s);
  }
  if (MetricsRegistry* reg = options_.metrics) {
    m_accepted_ = reg->GetCounter("engine.accepted");
    m_ignored_ = reg->GetCounter("engine.ignored_writes");
    for (size_t r = 1; r < kNumAbortReasons; ++r) {
      m_rejected_[r] = reg->GetCounter(
          std::string("engine.rejected.") +
          AbortReasonName(static_cast<AbortReason>(r)));
    }
    m_contention_ = reg->GetCounter("engine.lock_contention");
    m_retries_ = reg->GetCounter("engine.lock_retries");
    m_fallbacks_ = reg->GetCounter("engine.full_lock_fallbacks");
    m_compactions_ = reg->GetCounter("engine.compactions");
    m_batches_ = reg->GetCounter("engine.batches");
    m_batch_ops_ = reg->GetCounter("engine.batch_ops");
    m_hot_encodings_ = reg->GetCounter("engine.hot_encodings");
    m_batch_fallbacks_ = reg->GetCounter("engine.batch_fallbacks");
    m_versions_installed_ = reg->GetCounter("engine.versions_installed");
    m_versions_gc_ = reg->GetCounter("engine.versions_gc");
    m_commits_ = reg->GetCounter("engine.commits");
    m_consec_aborts_ = reg->GetGauge("engine.max_consecutive_aborts");
    m_live_versions_ = reg->GetGauge("engine.live_versions");
    for (size_t p = 0; p < kNumTxnPhases; ++p) {
      m_phase_[p] = reg->GetHistogram(
          std::string("engine.phase.") +
          TxnPhaseName(static_cast<TxnPhase>(p)) + "_us");
    }
    phase_mask_ = (uint64_t{1} << (options_.phase_sample_shift < 63
                                       ? options_.phase_sample_shift
                                       : 63)) -
                  1;
  }
  // Shard 0's slot 0 is the virtual transaction, which lives outside the
  // chunked storage (and outside compaction); real ids there start at slot 1.
  shards_[0].base_slot.store(1, std::memory_order_relaxed);
  shards_[0].next_slot = 1;
  t0_.ts = TimestampVector::Virtual(options_.k);
  t0_.life = 2;  // Committed, incarnation 0; never written again.
}

ShardedMtkEngine::~ShardedMtkEngine() {
  for (Shard& sh : shards_) {
    for (auto& entry : sh.dir) {
      delete entry.load(std::memory_order_relaxed);
    }
  }
}

ShardedMtkEngine::TxnState* ShardedMtkEngine::PeekState(TxnId txn) const {
  if (txn == kVirtualTxn) return const_cast<TxnState*>(&t0_);
  Shard& sh = ShardForTxn(txn);
  const uint32_t slot = static_cast<uint32_t>(txn / num_shards_);
  Chunk* c = sh.dir[slot >> kChunkBits].load(std::memory_order_acquire);
  if (c == nullptr) return nullptr;
  return &c->states[slot & (kChunkSize - 1)];
}

ShardedMtkEngine::TxnState& ShardedMtkEngine::StateLocked(Shard& sh,
                                                          TxnId txn) {
  assert(txn != kVirtualTxn && txn % num_shards_ == sh.index);
  const uint32_t slot = static_cast<uint32_t>(txn / num_shards_);
  assert(slot >= sh.base_slot.load(std::memory_order_relaxed) &&
         "access to a compacted (released) txn");
  const uint32_t ci = slot >> kChunkBits;
  if (ci >= kDirSize) {
    throw std::runtime_error(
        "ShardedMtkEngine: per-shard transaction-slot capacity exceeded");
  }
  Chunk* c = sh.dir[ci].load(std::memory_order_relaxed);
  if (c == nullptr) {
    // Build the chunk fully before publication: lock-free liveness peeks
    // may load the pointer the instant the release store lands.
    auto* fresh = new Chunk;
    fresh->states.reserve(kChunkSize);
    for (uint32_t n = 0; n < kChunkSize; ++n) {
      fresh->states.emplace_back(options_.k);
    }
    sh.dir[ci].store(fresh, std::memory_order_release);
    c = fresh;
  }
  if (slot >= sh.next_slot) sh.next_slot = slot + 1;
  return c->states[slot & (kChunkSize - 1)];
}

ShardedMtkEngine::ItemState& ShardedMtkEngine::ItemLocked(Shard& sh,
                                                          ItemId item) {
  const size_t local = item / num_shards_;
  if (sh.items.size() <= local) sh.items.resize(local + 1);
  return sh.items[local];
}

ShardedMtkEngine::LiveRef ShardedMtkEngine::TopLiveOf(
    Access& top, std::vector<Access>& stack) const {
  if (top.txn == kVirtualTxn) {
    return {kVirtualTxn, 0, const_cast<TxnState*>(&t0_)};
  }
  {
    TxnState* s = PeekState(top.txn);
    const uint64_t w = LoadLife(*s);
    if (LifeIncarnation(w) == top.incarnation && !LifeAborted(w)) {
      return {top.txn, top.incarnation, s};
    }
  }
  // Dead top: drop it and scan for the most recent live entry. Dead is
  // permanent for a (txn, incarnation) pair - RestartTxn bumps the
  // incarnation in the same store that clears the aborted bit - so popping
  // on a lock-free liveness read is safe.
  stack.pop_back();
  while (!stack.empty()) {
    const Access& a = stack.back();
    TxnState* s = PeekState(a.txn);
    const uint64_t w = LoadLife(*s);
    if (LifeIncarnation(w) == a.incarnation && !LifeAborted(w)) {
      top = a;
      return {a.txn, a.incarnation, s};
    }
    stack.pop_back();
  }
  top = Access{};
  return {kVirtualTxn, 0, const_cast<TxnState*>(&t0_)};
}

TsElement ShardedMtkEngine::NextUpper(Shard& sh, TsElement above) {
  const TsElement n = static_cast<TsElement>(num_shards_);
  TsElement raw = sh.ucount;
  TsElement val = raw * n + static_cast<TsElement>(sh.index);
  // The counter alone guarantees val exceeds every value this shard
  // assigned; bump it past cross-shard values when the caller needs
  // val > above. With one shard the loop never runs, reproducing
  // MtkScheduler's plain ucount sequence.
  while (above != kUndefinedElement && val <= above) {
    ++raw;
    val += n;
  }
  sh.ucount = raw + 1;
  return val;
}

TsElement ShardedMtkEngine::NextLower(Shard& sh, TsElement below) {
  const TsElement n = static_cast<TsElement>(num_shards_);
  TsElement raw = sh.lcount;
  TsElement val = raw * n + static_cast<TsElement>(sh.index);
  while (val >= below) {
    --raw;
    val -= n;
  }
  sh.lcount = raw - 1;
  return val;
}

VectorCompareResult ShardedMtkEngine::CompareStates(Shard& shx,
                                                    const TxnState& a,
                                                    const TxnState& b) {
  const VectorCompareResult r = Compare(a.ts, b.ts);
  shx.stats.element_comparisons += r.index + 1;
  return r;
}

bool ShardedMtkEngine::SetStates(Shard& shx, TxnState& sj, TxnState& si,
                                 TxnId j, TxnId i, bool hot_item,
                                 MirrorDelta& mir, AbortReason* why) {
  if (j == i) return true;  // Line 15.
  ++shx.stats.set_calls;
  const VectorCompareResult cr = CompareStates(shx, sj, si);
  // Last-column values come from shard shx's counter pair, globally unique
  // via the value * N + shard encoding; NextUpper/NextLower respect the
  // caller's bound, which the cross-shard counter classes need.
  struct Counters {
    ShardedMtkEngine* e;
    Shard* sh;
    TsElement Upper(TsElement above) { return e->NextUpper(*sh, above); }
    TsElement Lower(TsElement below) { return e->NextLower(*sh, below); }
  };
  // New encodings use the runtime MT(k+) width, not the physical k: the
  // vectors stay physically k wide (Compare walks them in full, and the
  // elements beyond the active width hold the constants every narrower
  // encoding fixes), so decisions made under different widths stay
  // mutually consistent - Theorem 5's shared-prefix composite on one
  // store. See SetActiveK.
  const EncodeOutcome out = EncodeDependency(
      cr, active_k_.load(std::memory_order_relaxed), sj.ts, si.ts,
      j == kVirtualTxn, hot_item, options_.optimized_encoding,
      Counters{this, &shx});
  shx.stats.elements_assigned += out.elements_assigned;
  if (out.hot_path) {
    ++shx.stats.hot_encodings;
    ++mir.hot_encodings;
  }
  if (!out.ok) {
    *why = out.why;
    return false;
  }
  return true;
}

OpDecision ShardedMtkEngine::DecideLocked(const Op& op, Shard& shx,
                                          ItemState& item, TxnState& si,
                                          const LiveRef& jr,
                                          const LiveRef& jw,
                                          AbortReason* why,
                                          MirrorDelta& mir) {
  EngineStats& st = shx.stats;
  const TxnId i = op.txn;

  auto refuse = [&](AbortReason reason, TxnId blocker = kVirtualTxn) {
    ++st.rejected;
    st.reject_reasons.Add(reason);
    ++mir.rejected[static_cast<size_t>(reason)];
    NoteRejectLocked(shx, reason, op, blocker);
    if (why != nullptr) *why = reason;
    return OpDecision::kReject;
  };
  auto accept = [&]() {
    ++st.accepted;
    ++mir.accepted;
    return OpDecision::kAccept;
  };

  const uint64_t wi = si.life;  // Owner shard held: no concurrent writer.
  if (LifeAborted(wi) || LifeCommitted(wi)) {
    return refuse(AbortReason::kStaleTxn);
  }
  const uint32_t inc_i = LifeIncarnation(wi);

  // Section III-D-5 hot-item detection, counted exactly as MtkScheduler
  // does: decided non-stale operations bump the per-item access count, and
  // the operation that crosses the threshold is itself encoded plainly.
  const bool hot = item.access_count >= options_.hot_item_threshold;
  ++item.access_count;

  // Lines 5-6: j is whichever of RT(x), WT(x) has the larger timestamp,
  // with RT(x) winning ties and undetermined comparisons.
  const LiveRef& j =
      CompareStates(shx, *jr.state, *jw.state).order == VectorOrder::kLess
          ? jw
          : jr;

  // Cause recorded by the SetStates call that refused the dependency.
  AbortReason cause = AbortReason::kNone;

  auto reject = [&]() {
    StoreLife(si, wi | 1);
    if (options_.flight != nullptr) {
      // Captured before the starvation-fix reset flushes TS(i).
      options_.flight->RecordAbort(
          i, i, cause, j.txn, &op,
          ShardBit(shx.index) | ShardBit(ShardIndex(i)), &si.ts,
          FlightRecorder::CoarseNowUs());
    }
    if (options_.starvation_fix) {
      // Section III-D-4: flush TS(i), seed past the blocker.
      const TimestampVector& tb = j.state->ts;
      assert(tb.IsDefined(0));
      si.ts.Reset();
      si.ts.Set(0, tb.Get(0) + 1);
    }
    return refuse(cause, j.txn);
  };

  if (op.type == OpType::kRead) {
    if (SetStates(shx, *j.state, si, j.txn, i, hot, mir, &cause)) {
      item.readers.push_back({i, inc_i});  // Line 7: RT(x) := i.
      item.top_reader = item.readers.back();
      return accept();
    }
    // Lines 9-10: an old read is still safe after the most recent writer.
    if (j.txn == jr.txn && !options_.disable_old_read_path) {
      const bool write_ordered =
          options_.relaxed_read_path
              ? SetStates(shx, *jw.state, si, jw.txn, i, hot, mir, &cause)
              : CompareStates(shx, *jw.state, si).order == VectorOrder::kLess;
      if (write_ordered) {
        return accept();  // RT(x) is not updated.
      }
    }
    return reject();  // Line 11.
  }

  // Write.
  if (SetStates(shx, *j.state, si, j.txn, i, hot, mir, &cause)) {
    item.writers.push_back({i, inc_i});  // Line 12: WT(x) := i.
    item.top_writer = item.writers.back();
    // Writes are tracked for the WAL's commit record (CommitTxn swaps the
    // list out; RestartTxn and the batch throttle clear it). With only a
    // flight recorder attached the fixed-size fw fields suffice - the
    // commit record wants the first kMaxWrites items, the count, and the
    // shard mask, and the array costs no allocation.
    if (options_.wal != nullptr) {
      si.writes.push_back(op.item);
    } else if (options_.flight != nullptr) {
      if (si.fw_total < FlightRecorder::kMaxWrites) {
        si.fw[si.fw_total] = op.item;
      }
      ++si.fw_total;
      si.fw_mask |= ShardBit(shx.index);
    }
    return accept();
  }
  if (options_.thomas_write_rule) {
    // Section III-D-6c: TS(RT(x)) < TS(i) < TS(WT(x)) makes the write
    // obsolete; skip it instead of aborting T_i.
    const bool after_reads =
        CompareStates(shx, *jr.state, si).order == VectorOrder::kLess;
    const bool before_writer =
        CompareStates(shx, si, *jw.state).order == VectorOrder::kLess;
    if (after_reads && before_writer) {
      ++st.ignored_writes;
      ++mir.ignored;
      return OpDecision::kIgnore;
    }
  }
  return reject();  // Line 14.
}

void ShardedMtkEngine::EnsureChainLocked(ItemState& item) {
  if (item.mv_init) return;
  item.mv_init = true;
  // The default-constructed mv_newest IS the virtual-T0 base version
  // (writer kVirtualTxn, all stamps 0): T0's vector orders before any
  // transaction, so a read walk that exhausts every real version always
  // has a version to take.
  item.mv_newest = MvVersion{};
}

void ShardedMtkEngine::MvUnlinkDeadLocked(Shard& shx, ItemState& item,
                                          MirrorDelta& mir) {
  if (!item.mv_init) return;
  // Dead (txn, incarnation) pairs are permanent - RestartTxn bumps the
  // incarnation in the store that clears the aborted bit - so unlinking on
  // a lock-free liveness read needs only shard(item)'s mutex, exactly like
  // the single-version stack pops in TopLiveOf.
  auto dead = [&](const Access& a) {
    if (a.txn == kVirtualTxn) return false;
    const uint64_t w = LoadLife(*PeekState(a.txn));
    return LifeIncarnation(w) != a.incarnation || LifeAborted(w);
  };
  auto scrub_readers = [&](MvVersion& v) {
    v.readers.erase(std::remove_if(v.readers.begin(), v.readers.end(), dead),
                    v.readers.end());
  };
  uint64_t gone = 0;
  for (size_t v = item.mv_older.size(); v-- > 0;) {
    if (dead(item.mv_older[v].writer)) {
      item.mv_older.erase(item.mv_older.begin() + static_cast<long>(v));
      ++gone;
    }
  }
  if (dead(item.mv_newest.writer)) {
    ++gone;
    if (!item.mv_older.empty()) {
      item.mv_newest = std::move(item.mv_older.back());
      item.mv_older.pop_back();
      item.mv_newest.end_stamp = 0;  // Newest again.
    } else {
      item.mv_newest = MvVersion{};  // Back to the T0 base.
    }
  }
  for (MvVersion& v : item.mv_older) scrub_readers(v);
  scrub_readers(item.mv_newest);
  if (num_shards_ <= 64) {
    // Rebuild the shard-coverage mask from the survivors - the only place
    // stale (dead-accessor) bits are ever shed. Incremental ORs at read
    // and install time keep it a superset between unlinks.
    uint64_t cover = 0;
    auto add = [&](const Access& a) {
      if (a.txn != kVirtualTxn) {
        cover |= uint64_t{1} << (a.txn % num_shards_);
      }
    };
    for (const MvVersion& v : item.mv_older) {
      add(v.writer);
      for (const Access& r : v.readers) add(r);
    }
    add(item.mv_newest.writer);
    for (const Access& r : item.mv_newest.readers) add(r);
    item.mv_cover = cover;
  }
  if (gone != 0) {
    shx.stats.versions_gc += gone;
    mir.versions_gc += gone;
    live_versions_.fetch_add(-static_cast<int64_t>(gone),
                             std::memory_order_relaxed);
  }
}

void ShardedMtkEngine::MvPruneLocked(Shard& shx, ItemState& item,
                                     uint64_t watermark, MirrorDelta& mir,
                                     bool force) {
  if (!item.mv_init || item.mv_older.empty() || watermark == 0) return;
  // Hysteresis gate (incremental GC only; sweeps pass force): in steady
  // state a chain hovers at the keep-tail length, where the scan below
  // can never cut (the tail floor spans the whole chain) - yet
  // commit-side GC calls this for every written item of every commit,
  // and the committed_writer probes are the dominant cost. Skip until
  // the chain outgrows the tail by a slack margin; a real cut then
  // brings it back near the floor, so the scan runs once per
  // kPruneSlack installs instead of once per commit. Between CompactAll
  // sweeps memory stays bounded at keep_tail + kPruneSlack versions per
  // chain.
  constexpr size_t kPruneSlack = 8;
  const size_t tail_floor = std::max<uint32_t>(1, options_.mv_gc_keep_tail);
  if (!force && item.mv_older.size() < tail_floor + kPruneSlack) return;
  // Committed is as permanent as aborted (a committed id never restarts),
  // so the scan is safe on lock-free liveness words under shard(item).
  auto committed_writer = [&](const Access& a) {
    if (a.txn == kVirtualTxn) return true;
    const uint64_t w = LoadLife(*PeekState(a.txn));
    return LifeIncarnation(w) == a.incarnation && LifeCommitted(w);
  };
  // Newest committed version, over the combined chain (mv_older then
  // mv_newest). Everything strictly older is a candidate; the newest
  // committed version itself must survive - it is what future readers
  // fall back to.
  size_t newest_committed;  // Index into mv_older, or size() = mv_newest.
  if (committed_writer(item.mv_newest.writer)) {
    newest_committed = item.mv_older.size();
  } else {
    size_t found = item.mv_older.size() + 1;
    for (size_t v = item.mv_older.size(); v-- > 0;) {
      if (committed_writer(item.mv_older[v].writer)) {
        found = v;
        break;
      }
    }
    if (found > item.mv_older.size()) return;  // No committed version yet.
    newest_committed = found;
  }
  // Truncate the longest oldest-prefix below the newest committed version
  // whose end and read stamps both precede the watermark. Soundness: the
  // watermark is the oldest live incarnation's begin stamp, and a live
  // reader's begin stamp bounds every read stamp it produces from below -
  // so read_stamp < watermark means every reader of the version is
  // committed or dead, its reads-from and reader-before-later-writer MVSG
  // edges already encoded in the vectors. end_stamp < watermark means the
  // successor's install (which encoded the version-order edge and ordered
  // the version's readers before the successor's writer) also precedes
  // every live transaction. Dropping the prefix only removes placement
  // slots - a write that can no longer find a slot rejects with
  // kVersionConflict instead of inserting below the horizon - and a read
  // that would have taken a truncated version falls back to a surviving
  // newer one or (degenerately) rejects; neither can violate the order
  // already encoded.
  // The keep-tail floor: the index of the mv_gc_keep_tail-th newest
  // committed version (T0 bases count - they are the ideal fallback).
  // Everything at or above it survives so post-GC readers keep an older
  // writer to fall back to when the newest one is un-orderable.
  size_t floor_idx = newest_committed;
  const uint32_t tail = std::max<uint32_t>(1, options_.mv_gc_keep_tail);
  for (size_t kept = 1, v = newest_committed; kept < tail && v-- > 0;) {
    if (committed_writer(item.mv_older[v].writer)) {
      floor_idx = v;
      ++kept;
    }
  }
  size_t cut = 0;
  while (cut < floor_idx &&
         item.mv_older[cut].end_stamp < watermark &&
         item.mv_older[cut].read_stamp < watermark) {
    ++cut;
  }
  if (cut == 0) return;
  uint64_t gone = 0;
  for (size_t v = 0; v < cut; ++v) {
    if (item.mv_older[v].writer.txn != kVirtualTxn) ++gone;
  }
  item.mv_older.erase(item.mv_older.begin(),
                      item.mv_older.begin() + static_cast<long>(cut));
  if (gone != 0) {
    shx.stats.versions_gc += gone;
    mir.versions_gc += gone;
    live_versions_.fetch_add(-static_cast<int64_t>(gone),
                             std::memory_order_relaxed);
  }
}

OpDecision ShardedMtkEngine::DecideMvLocked(const Op& op, Shard& shx,
                                            ItemState& item, TxnState& si,
                                            AbortReason* why,
                                            MirrorDelta& mir) {
  EngineStats& st = shx.stats;
  const TxnId i = op.txn;

  auto refuse = [&](AbortReason reason, TxnId blocker = kVirtualTxn) {
    ++st.rejected;
    st.reject_reasons.Add(reason);
    ++mir.rejected[static_cast<size_t>(reason)];
    NoteRejectLocked(shx, reason, op, blocker);
    if (why != nullptr) *why = reason;
    return OpDecision::kReject;
  };
  auto accept = [&]() {
    ++st.accepted;
    ++mir.accepted;
    return OpDecision::kAccept;
  };

  const uint64_t wi = si.life;  // Owner shard held: no concurrent writer.
  if (LifeAborted(wi) || LifeCommitted(wi)) {
    return refuse(AbortReason::kStaleTxn);
  }
  const uint32_t inc_i = LifeIncarnation(wi);
  if (si.begin_stamp == 0) {
    // First decided operation of the incarnation: pin the GC horizon.
    si.begin_stamp = mv_stamp_.fetch_add(1, std::memory_order_relaxed);
  }

  const bool hot = item.access_count >= options_.hot_item_threshold;
  ++item.access_count;

  // Combined chain view, oldest first: mv_older[0..n_old) then mv_newest.
  // Every entry is live - MvUnlinkDeadLocked ran under this lock and the
  // batch lockset covers every chain writer's and reader's shard, freezing
  // their liveness words and vectors for the whole decision.
  const size_t n_old = item.mv_older.size();
  const size_t chain_len = n_old + 1;
  auto version_at = [&](size_t idx) -> MvVersion& {
    return idx < n_old ? item.mv_older[idx] : item.mv_newest;
  };

  // Cause recorded by the SetStates call that refused the dependency.
  AbortReason cause = AbortReason::kEncodingExhausted;

  if (op.type == OpType::kRead) {
    // MvMtkScheduler's read walk, newest -> oldest: take the first version
    // whose writer can be ordered before T_i. The T0 base is orderable
    // before anything, so reads practically never abort.
    size_t live_seen = 0;
    for (size_t v = chain_len; v-- > 0;) {
      MvVersion& ver = version_at(v);
      ++live_seen;
      if (ver.writer.txn == i) {
        return accept();  // Reads its own pending write.
      }
      TxnState& sw = *PeekState(ver.writer.txn);
      if (SetStates(shx, sw, si, ver.writer.txn, i, hot, mir, &cause)) {
        ver.readers.push_back({i, inc_i});
        if (num_shards_ <= 64) {
          item.mv_cover |= uint64_t{1} << (i % num_shards_);
        }
        ver.read_stamp = mv_stamp_.fetch_add(1, std::memory_order_relaxed);
        if (live_seen > 1) ++st.old_version_reads;
        return accept();
      }
    }
    // Only reachable in degenerate vector states (every writer including
    // T0 refused the encoding). No starvation seeding, matching the
    // scheduler: the blocker set is the whole chain, not one transaction.
    ++st.read_rejects;
    StoreLife(si, wi | 1);
    mv_dead_epoch_.fetch_add(1, std::memory_order_release);
    if (options_.flight != nullptr) {
      // Blocker 0: the whole chain refused, no single fixing transaction.
      options_.flight->RecordAbort(
          i, i, cause, kVirtualTxn, &op,
          ShardBit(shx.index) | ShardBit(ShardIndex(i)), &si.ts,
          FlightRecorder::CoarseNowUs());
    }
    return refuse(cause);
  }

  // Write: two-phase placement. Phase 1 (no encoding) finds the NEWEST
  // feasible insertion slot - after chain index j requires (a) writer(j)
  // not already ordered after T_i, (b) T_i not already ordered after
  // writer(j+1), (c) no live reader of any version up to j already ordered
  // after T_i (a reader of an older version precedes the writer of every
  // newer version - the MVSG rule).
  Access blocker{};  // kVirtualTxn: SeedAfter's default blocker.
  size_t chosen = chain_len;  // Sentinel: no slot found yet.
  {
    bool blocked_by_reader = false;
    bool reader_block_stack[32];
    std::vector<uint8_t> reader_block_heap;
    const bool inline_blocks = chain_len <= 32;
    if (!inline_blocks) reader_block_heap.assign(chain_len, 0);
    auto set_block = [&](size_t lj, bool b) {
      if (inline_blocks) {
        reader_block_stack[lj] = b;
      } else {
        reader_block_heap[lj] = b ? 1 : 0;
      }
    };
    auto get_block = [&](size_t lj) {
      return inline_blocks ? reader_block_stack[lj]
                           : reader_block_heap[lj] != 0;
    };
    for (size_t lj = 0; lj < chain_len; ++lj) {
      for (const Access& r : version_at(lj).readers) {
        if (r.txn == i) continue;
        TxnState& sr = *PeekState(r.txn);
        if (CompareStates(shx, si, sr).order == VectorOrder::kLess) {
          blocked_by_reader = true;
          blocker = r;
        }
      }
      set_block(lj, blocked_by_reader);
    }
    for (size_t lj = chain_len; lj-- > 0;) {
      const Access w = version_at(lj).writer;
      if (w.txn != i &&
          CompareStates(shx, *PeekState(w.txn), si).order ==
              VectorOrder::kGreater) {
        continue;  // Writer already after T_i: slot too new.
      }
      if (lj + 1 < chain_len) {
        const Access nx = version_at(lj + 1).writer;
        if (CompareStates(shx, si, *PeekState(nx.txn)).order ==
            VectorOrder::kGreater) {
          continue;  // T_i already after the next writer: inconsistent.
        }
      }
      if (get_block(lj)) continue;  // Readers up to here block; an older
                                    // slot may still be free.
      chosen = lj;
      break;
    }
  }

  auto reject_write = [&]() {
    StoreLife(si, wi | 1);
    mv_dead_epoch_.fetch_add(1, std::memory_order_release);
    if (options_.flight != nullptr) {
      // Captured before SeedAfter flushes TS(i). blocker.txn can be
      // kVirtualTxn when no one accessor fixed the infeasibility.
      options_.flight->RecordAbort(
          i, i, AbortReason::kVersionConflict, blocker.txn, &op,
          ShardBit(shx.index) | ShardBit(ShardIndex(i)), &si.ts,
          FlightRecorder::CoarseNowUs());
    }
    if (options_.starvation_fix) {
      // VectorTable::SeedAfter semantics: flush TS(i), seed just past the
      // blocker's first element (1 when the blocker has none).
      const TimestampVector& tb = PeekState(blocker.txn)->ts;
      si.ts.Reset();
      si.ts.Set(0, tb.IsDefined(0) ? tb.Get(0) + 1 : 1);
    }
    return refuse(AbortReason::kVersionConflict, blocker.txn);
  };
  if (chosen == chain_len) {
    return reject_write();
  }

  // Phase 2: encode the chosen placement. Each Set was pre-checked as
  // not-determined-opposite, but an earlier encode can incidentally fix a
  // later pair the wrong way; bail out safely (encodings only ever add
  // constraints) in that rare case.
  bool ok = true;
  {
    const Access pred = version_at(chosen).writer;
    if (pred.txn != i &&
        !SetStates(shx, *PeekState(pred.txn), si, pred.txn, i, hot, mir,
                   &cause)) {
      blocker = pred;
      ok = false;
    }
    if (ok && chosen + 1 < chain_len) {
      const Access nx = version_at(chosen + 1).writer;
      if (!SetStates(shx, si, *PeekState(nx.txn), i, nx.txn, hot, mir,
                     &cause)) {
        blocker = nx;
        ok = false;
      }
    }
    for (size_t lj = 0; ok && lj <= chosen; ++lj) {
      for (const Access& r : version_at(lj).readers) {
        if (r.txn == i) continue;
        if (!SetStates(shx, *PeekState(r.txn), si, r.txn, i, hot, mir,
                       &cause)) {
          blocker = r;
          ok = false;
          break;
        }
      }
    }
  }
  if (!ok) {
    return reject_write();
  }

  // Install after chain index `chosen`. The stamp orders the install on
  // the engine-wide clock for GC visibility; the serialization order
  // itself lives in the vectors.
  const uint64_t stamp = mv_stamp_.fetch_add(1, std::memory_order_relaxed);
  if (chosen == chain_len - 1) {
    item.mv_older.push_back(std::move(item.mv_newest));
    item.mv_older.back().end_stamp = stamp;
    item.mv_newest = MvVersion{};
    item.mv_newest.writer = {i, inc_i};
    item.mv_newest.begin_stamp = stamp;
  } else {
    MvVersion nv;
    nv.writer = {i, inc_i};
    nv.begin_stamp = stamp;
    nv.end_stamp = stamp;  // Born superseded: a newer version exists.
    item.mv_older.insert(item.mv_older.begin() + static_cast<long>(chosen + 1),
                         std::move(nv));
  }
  if (num_shards_ <= 64) {
    item.mv_cover |= uint64_t{1} << (i % num_shards_);
  }
  ++st.versions_installed;
  ++mir.versions_installed;
  live_versions_.fetch_add(1, std::memory_order_relaxed);
  // CommitTxn prunes the written chains (and the WAL logs the write set),
  // so multiversion mode always tracks writes.
  si.writes.push_back(op.item);
  if (options_.install_crash != nullptr && options_.wal != nullptr &&
      options_.install_crash->armed() &&
      mv_installs_.fetch_add(1, std::memory_order_relaxed) + 1 ==
          options_.install_crash->at_install) {
    options_.wal->CrashNow(options_.install_crash->point);
  }
  return accept();
}

void ShardedMtkEngine::MergePendingLocked(Shard& sh, const MirrorDelta& mir,
                                          MirrorDelta* flush) {
  if (m_accepted_ == nullptr) return;  // No registry attached.
  sh.pending.MergeFrom(mir);
  if (options_.mirror_flush_ops == 0 ||
      sh.pending.events >= options_.mirror_flush_ops) {
    flush->MergeFrom(sh.pending);
    sh.pending = MirrorDelta{};
  }
}

void ShardedMtkEngine::ApplyMirror(const MirrorDelta& d) {
  if (m_accepted_ == nullptr || d.events == 0) return;
  if (d.accepted != 0) m_accepted_->Add(d.accepted);
  if (d.ignored != 0) m_ignored_->Add(d.ignored);
  if (d.hot_encodings != 0) m_hot_encodings_->Add(d.hot_encodings);
  for (size_t r = 1; r < kNumAbortReasons; ++r) {
    if (d.rejected[r] != 0) m_rejected_[r]->Add(d.rejected[r]);
  }
  if (d.contention != 0) m_contention_->Add(d.contention);
  if (d.retries != 0) m_retries_->Add(d.retries);
  if (d.fallbacks != 0) m_fallbacks_->Add(d.fallbacks);
  if (d.batch_fallbacks != 0) m_batch_fallbacks_->Add(d.batch_fallbacks);
  if (d.batches != 0) m_batches_->Add(d.batches);
  if (d.batch_ops != 0) m_batch_ops_->Add(d.batch_ops);
  if (d.compactions != 0) m_compactions_->Add(d.compactions);
  if (d.versions_installed != 0) {
    m_versions_installed_->Add(d.versions_installed);
  }
  if (d.versions_gc != 0) m_versions_gc_->Add(d.versions_gc);
  if (options_.multiversion) {
    const int64_t lv = live_versions_.load(std::memory_order_relaxed);
    m_live_versions_->Set(lv < 0 ? 0 : lv);
  }
}

void ShardedMtkEngine::RecordPhase(TxnPhase phase, uint64_t ns, TxnId tag) {
  const uint64_t us = ns / 1000;
  m_phase_[static_cast<size_t>(phase)]->RecordWithExemplar(us, tag);
#if MDTS_TRACE_COMPILED
  if (Tracer::Enabled()) {
    // A completed span backdated over the measured slice, carrying the
    // same transaction id the histogram exemplar points at - so a p99
    // bucket resolves to a concrete Perfetto span via arg "txn".
    static constexpr const char* kSpanNames[kNumTxnPhases] = {
        "engine.phase.admission", "engine.phase.lock",
        "engine.phase.decide",    "engine.phase.mv_read",
        "engine.phase.wal_append", "engine.phase.fsync",
        "engine.phase.ack"};
    TraceEvent e;
    e.name = kSpanNames[static_cast<size_t>(phase)];
    e.ph = 'X';
    const uint64_t now = Tracer::NowUs();
    e.ts_us = now > us ? now - us : 0;
    e.dur_us = us;
    e.arg_name = "txn";
    e.arg = tag;
    Tracer::Get().Emit(e);
  }
#endif
}

void ShardedMtkEngine::SetActiveK(size_t k) {
  if (k < 1) k = 1;
  if (k > options_.k) k = options_.k;
  active_k_.store(static_cast<uint32_t>(k), std::memory_order_relaxed);
}

void ShardedMtkEngine::NoteRejectLocked(Shard& shx, AbortReason reason,
                                        const Op& op, TxnId blocker,
                                        uint64_t fallback_round) {
  RejectRecord& r = shx.last_reject;
  r.seq = reject_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  r.reason = reason;
  r.op = op;
  r.blocker = blocker;
  r.fallback_round = fallback_round;
}

std::string ShardedMtkEngine::ExplainLastReject() const {
  RejectRecord newest;
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> g(sh.mu);
    if (sh.last_reject.seq > newest.seq) newest = sh.last_reject;
  }
  if (newest.seq == 0) return "no rejection yet";
  std::string out =
      FormatReject(OpName(newest.op), newest.reason,
                   newest.blocker == kVirtualTxn
                       ? 0
                       : static_cast<uint32_t>(newest.blocker));
  if (newest.reason == AbortReason::kBatchThrottled) {
    out += "; champion T" + std::to_string(newest.blocker) +
           ", fallback round " + std::to_string(newest.fallback_round);
  }
  return out;
}

void ShardedMtkEngine::LockShard(Shard& sh) {
  if (sh.mu.try_lock()) return;
  sh.mu.lock();
  // We now hold sh.mu, so the per-shard counter needs no further sync; the
  // registry mirror is buffered (EngineOptions::mirror_flush_ops) and
  // flushed at the next batch boundary or stats() call.
  ++sh.stats.lock_contention;
  if (m_contention_ != nullptr) {
    ++sh.pending.contention;
    ++sh.pending.events;
  }
  MDTS_TRACE_INSTANT_ARG("engine.shard_lock_contention", "shard", sh.index);
}

OpDecision ShardedMtkEngine::Process(const Op& op, AbortReason* reason) {
  MDTS_TRACE_SPAN(op.type == OpType::kRead ? "engine.read" : "engine.write");
  OpDecision d = OpDecision::kReject;
  ProcessBatch(std::span<const Op>(&op, 1), &d, reason);
  return d;
}

size_t ShardedMtkEngine::ProcessBatch(std::span<const Op> ops,
                                      OpDecision* decisions,
                                      AbortReason* reasons) {
  MDTS_TRACE_SPAN("engine.batch");
  const size_t n = ops.size();
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_ops_.fetch_add(n, std::memory_order_relaxed);
  if (n == 0) {
    if (m_accepted_ != nullptr) {
      // Even an empty batch must eventually reach the mirror so the
      // "engine.batches" counter reconciles with stats().
      MirrorDelta d;
      d.events = 1;
      d.batches = 1;
      MirrorDelta flush;
      {
        std::lock_guard<std::mutex> g(shards_[0].mu);
        MergePendingLocked(shards_[0], d, &flush);
      }
      ApplyMirror(flush);
    }
    return 0;
  }
  if (reasons != nullptr) std::fill_n(reasons, n, AbortReason::kNone);

  // Phase attribution (sampled): admission = batch entry to the first
  // lock acquisition, lock = acquiring the sorted locksets (all rounds),
  // decide = the decision loops minus the MV read walks, mv_read = the MV
  // read-path decisions. Unsampled batches skip every clock read.
  const bool phase_sampled = SamplePhases(batch_seq_);
  uint64_t t_entry = 0;
  uint64_t admission_ns = 0;
  uint64_t lock_ns = 0;
  uint64_t decide_ns = 0;
  uint64_t mv_read_ns = 0;
  TxnId phase_tag = kVirtualTxn;
  if (phase_sampled) {
    t_entry = NowNs();
    for (const Op& op : ops) {
      if (op.txn != kVirtualTxn) {
        phase_tag = op.txn;
        break;
      }
    }
  }

  // Livelock guardrail: multi-op batches under heavy conflict can abort
  // each other forever (every round rejects some peer, every rejected peer
  // restarts and rejoins, and no transaction ever reaches CommitTxn - the
  // benched batch>=8 collapse at 64 items). Commit-free multi-op batches
  // are that livelock's engine-wide signature, so after
  // batch_fallback_rounds of them admission is serialized: one transaction
  // is elected champion and every other batched operation is throttled
  // until the champion commits.
  TxnId champion = kVirtualTxn;
  if (n >= 2 && options_.batch_fallback_rounds > 0) {
    uint64_t cur = fallback_champion_.load(std::memory_order_acquire);
    if (cur == 0 &&
        batches_since_commit_.fetch_add(1, std::memory_order_relaxed) + 1 >=
            options_.batch_fallback_rounds) {
      TxnId cand = kVirtualTxn;
      for (const Op& op : ops) {
        if (op.txn != kVirtualTxn) {
          cand = op.txn;
          break;
        }
      }
      if (cand != kVirtualTxn) {
        uint64_t expected = 0;
        if (!fallback_champion_.compare_exchange_strong(
                expected, cand, std::memory_order_acq_rel)) {
          cand = static_cast<TxnId>(expected);  // Adopt the race winner.
        }
        cur = cand;
      }
    }
    if (cur != 0) {
      champion = static_cast<TxnId>(cur);
      bool present = false;
      for (const Op& op : ops) {
        if (op.txn == champion) {
          present = true;
          break;
        }
      }
      if (present) {
        champion_missing_.store(0, std::memory_order_relaxed);
      } else if (champion_missing_.fetch_add(1, std::memory_order_relaxed) +
                     1 >=
                 options_.batch_fallback_rounds) {
        // The champion stopped submitting batches (its issuer gave up or
        // commits through another path): depose it so peers can progress.
        fallback_champion_.compare_exchange_strong(
            cur, 0, std::memory_order_acq_rel);
        champion_missing_.store(0, std::memory_order_relaxed);
        champion = kVirtualTxn;
      }
      if (champion != kVirtualTxn) {
        batch_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // Decided flags, inline for typical batch sizes.
  constexpr size_t kInlineBatch = 128;
  uint8_t inline_flags[kInlineBatch];
  std::vector<uint8_t> heap_flags;
  uint8_t* decided = inline_flags;
  if (n > kInlineBatch) {
    heap_flags.assign(n, 0);
    decided = heap_flags.data();
  } else {
    std::fill_n(inline_flags, n, uint8_t{0});
  }

  // Round-one lockset: the union of every operation's base pair (item
  // shard, issuer shard). Tops are discovered under the locks; with a few
  // operations per batch the union usually covers them already, so the
  // whole batch is decided under one sorted acquisition.
  ShardLockSet want;
  for (size_t q = 0; q < n; ++q) {
    want.Add(static_cast<uint32_t>(ops[q].item % num_shards_));
    if (ops[q].txn != kVirtualTxn) {
      want.Add(static_cast<uint32_t>(ops[q].txn % num_shards_));
    }
  }

  MirrorDelta mir;
  MirrorDelta flush;
  size_t accepted = 0;
  size_t undecided = n;
  uint64_t retries = 0;
  uint64_t fallbacks = 0;
  bool lock_all = false;
  if (want.overflow) {  // More distinct shards than the set can track.
    lock_all = true;
    ++fallbacks;
  }

  for (size_t attempt = 0;; ++attempt) {
    uint64_t t_lock0 = 0;
    if (phase_sampled) {
      t_lock0 = NowNs();
      if (attempt == 0) admission_ns = t_lock0 - t_entry;
    }
    const bool all = lock_all;  // Lock and unlock must use the same mode.
    if (all) {
      for (Shard& sh : shards_) LockShard(sh);
    } else {
      for (size_t q = 0; q < want.count; ++q) {
        LockShard(shards_[want.At(q)]);
      }
    }
    uint64_t t_decide0 = 0;
    if (phase_sampled) {
      t_decide0 = NowNs();
      lock_ns += t_decide0 - t_lock0;
    }
    const bool cross = all || want.count > 1;

    ShardLockSet next;
    for (size_t q = 0; q < n; ++q) {
      if (decided[q] != 0) continue;
      const Op& op = ops[q];
      AbortReason* why = reasons != nullptr ? &reasons[q] : nullptr;
      Shard& shx = ShardForItem(op.item);
      if (op.txn == kVirtualTxn) {
        // T0 is virtual; it issues no operations. Not an admission
        // decision, so the single/cross-shard counters stay untouched.
        ++shx.stats.rejected;
        shx.stats.reject_reasons.Add(AbortReason::kInvalidOp);
        ++mir.rejected[static_cast<size_t>(AbortReason::kInvalidOp)];
        NoteRejectLocked(shx, AbortReason::kInvalidOp, op, kVirtualTxn);
        if (why != nullptr) *why = AbortReason::kInvalidOp;
        decisions[q] = OpDecision::kReject;
        decided[q] = 1;
        --undecided;
        continue;
      }
      Shard& shi = ShardForTxn(op.txn);
      TxnState& si = StateLocked(shi, op.txn);
      if (champion != kVirtualTxn && op.txn != champion) {
        // Serialized-admission fallback: throttle every non-champion
        // operation. Decided in round one - shi and shx are always in the
        // round-one lockset - and counted as a normal admission decision
        // so the accepted + ignored + rejected == single + cross invariant
        // holds. The vector reset (and no starvation seeding) keeps the
        // throttled transaction from rejoining as a super-competitor that
        // could outrank the champion.
        if (cross) {
          ++shx.stats.cross_shard_ops;
        } else {
          ++shx.stats.single_shard_ops;
        }
        const uint64_t wi = si.life;
        AbortReason reason = AbortReason::kBatchThrottled;
        if (LifeAborted(wi) || LifeCommitted(wi)) {
          reason = AbortReason::kStaleTxn;
        } else {
          if (options_.flight != nullptr) {
            // Captured before the throttle reset flushes TS(i); the
            // champion is the blocker the throttled peer waits out.
            options_.flight->RecordAbort(
                op.txn, op.txn, reason, champion, &op,
                ShardBit(ShardIndex(op.item)) |
                    ShardBit(ShardIndex(op.txn)),
                &si.ts, FlightRecorder::CoarseNowUs());
          }
          si.ts.Reset();
          si.writes.clear();
          si.fw_total = 0;
          si.fw_mask = 0;
          StoreLife(si, wi | 1);
          if (options_.multiversion) {
            mv_dead_epoch_.fetch_add(1, std::memory_order_release);
          }
        }
        ++shx.stats.rejected;
        shx.stats.reject_reasons.Add(reason);
        ++mir.rejected[static_cast<size_t>(reason)];
        NoteRejectLocked(
            shx, reason, op,
            reason == AbortReason::kBatchThrottled ? champion : kVirtualTxn,
            reason == AbortReason::kBatchThrottled
                ? batch_fallbacks_.load(std::memory_order_relaxed)
                : 0);
        if (why != nullptr) *why = reason;
        decisions[q] = OpDecision::kReject;
        decided[q] = 1;
        --undecided;
        continue;
      }
      ItemState& item = ItemLocked(shx, op.item);
      if (options_.multiversion) {
        // Multiversion decisions touch every live chain writer's and
        // reader's vector (reads order against writers; writes also
        // against readers), so the lockset must cover all their shards -
        // the MV analogue of the single-version top-accessor coverage.
        // Unlinking dead chain state first (safe under shard(x) alone)
        // keeps the coverage set to the live population.
        EnsureChainLocked(item);
        // The per-op dead-unlink walk only pays off when something died:
        // gate it on the engine-wide dead epoch. Equal epochs mean no
        // abort store since this chain's last scrub, so no entry can be
        // dead. (A death racing this very decision was always possible -
        // liveness reads are lock-free - and stays benign: the encodings
        // against a just-dead transaction merely add constraints, and the
        // entry is unlinked at the next epoch change.)
        const uint64_t dead_epoch =
            mv_dead_epoch_.load(std::memory_order_acquire);
        if (item.mv_unlink_epoch != dead_epoch) {
          MvUnlinkDeadLocked(shx, item, mir);
          item.mv_unlink_epoch = dead_epoch;
        }
        bool covered = all;
        if (!covered && num_shards_ <= 64) {
          // One mask test against the chain's shard-coverage summary. The
          // mask is a superset of the live accessors' shards, so a pass
          // here is exactly as sound as the full walk; a stale bit at
          // worst defers the op one round with an over-wide lockset.
          covered = (item.mv_cover & ~want.mask) == 0;
        } else if (!covered) {
          covered = true;
          auto check = [&](const Access& a) {
            if (a.txn != kVirtualTxn &&
                !want.Has(static_cast<uint32_t>(a.txn % num_shards_))) {
              covered = false;
            }
          };
          for (const MvVersion& v : item.mv_older) {
            check(v.writer);
            for (const Access& r : v.readers) check(r);
          }
          check(item.mv_newest.writer);
          for (const Access& r : item.mv_newest.readers) check(r);
        }
        if (!covered) {
          next.Add(shx.index);
          next.Add(shi.index);
          if (num_shards_ <= 64) {
            uint64_t missing = item.mv_cover & ~want.mask;
            while (missing != 0) {
              next.Add(static_cast<uint32_t>(std::countr_zero(missing)));
              missing &= missing - 1;
            }
          } else {
            auto widen = [&](const Access& a) {
              if (a.txn != kVirtualTxn) {
                next.Add(static_cast<uint32_t>(a.txn % num_shards_));
              }
            };
            for (const MvVersion& v : item.mv_older) {
              widen(v.writer);
              for (const Access& r : v.readers) widen(r);
            }
            widen(item.mv_newest.writer);
            for (const Access& r : item.mv_newest.readers) widen(r);
          }
          continue;
        }
        if (cross) {
          ++shx.stats.cross_shard_ops;
        } else {
          ++shx.stats.single_shard_ops;
        }
        OpDecision d;
        if (phase_sampled && op.type == OpType::kRead) {
          const uint64_t t0 = NowNs();
          d = DecideMvLocked(op, shx, item, si, why, mir);
          mv_read_ns += NowNs() - t0;
        } else {
          d = DecideMvLocked(op, shx, item, si, why, mir);
        }
        decisions[q] = d;
        if (d == OpDecision::kAccept) ++accepted;
        decided[q] = 1;
        --undecided;
        continue;
      }
      // Resolve the tops under shard(x); liveness reads are lock-free, so
      // this works even when the accessors' shards are not (yet) held.
      const LiveRef jr = TopLiveOf(item.top_reader, item.readers);
      const LiveRef jw = TopLiveOf(item.top_writer, item.writers);
      bool covered = all;
      if (!covered) {
        covered = (jr.txn == kVirtualTxn ||
                   want.Has(static_cast<uint32_t>(jr.txn % num_shards_))) &&
                  (jw.txn == kVirtualTxn ||
                   want.Has(static_cast<uint32_t>(jw.txn % num_shards_)));
      }
      if (!covered) {
        // Defer to the next round: its lockset is rebuilt from scratch
        // around the undecided ops' base pairs plus the tops just
        // observed, so stale shards from earlier rounds drop out.
        next.Add(shx.index);
        next.Add(shi.index);
        if (jr.txn != kVirtualTxn) {
          next.Add(static_cast<uint32_t>(jr.txn % num_shards_));
        }
        if (jw.txn != kVirtualTxn) {
          next.Add(static_cast<uint32_t>(jw.txn % num_shards_));
        }
        continue;
      }
      // Everything DecideLocked touches - item stacks, the three vectors,
      // shard(x)'s counters - is under a held mutex. Liveness of jr/jw is
      // frozen too: clearing it needs their (held) shards.
      if (cross) {
        ++shx.stats.cross_shard_ops;
      } else {
        ++shx.stats.single_shard_ops;
      }
      const OpDecision d = DecideLocked(op, shx, item, si, jr, jw, why, mir);
      decisions[q] = d;
      if (d == OpDecision::kAccept) ++accepted;
      decided[q] = 1;
      --undecided;
    }
    if (phase_sampled) decide_ns += NowNs() - t_decide0;

    if (undecided == 0) {
      // Attribute the batch's retry work to a shard we still hold, and
      // merge the batch's mirror deltas into its pending buffer - the
      // buffer hands back a flush batch once it crosses mirror_flush_ops.
      Shard& sh0 = all ? shards_[0] : shards_[want.At(0)];
      sh0.stats.lock_retries += retries;
      sh0.stats.full_lock_fallbacks += fallbacks;
      if (m_accepted_ != nullptr) {
        mir.events += n;
        mir.batches += 1;
        mir.batch_ops += n;
        mir.retries += retries;
        mir.fallbacks += fallbacks;
        if (champion != kVirtualTxn) mir.batch_fallbacks += 1;
        MergePendingLocked(sh0, mir, &flush);
      }
      if (all) {
        for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
          it->mu.unlock();
        }
      } else {
        for (size_t q = want.count; q-- > 0;) {
          shards_[want.At(q)].mu.unlock();
        }
      }
      break;
    }

    // Some tops live on shards outside the lockset. all == false here: a
    // full lock covers every top. Tops can keep shifting under contention,
    // so after max_lock_retries unstable rounds take every lock.
    assert(!all);
    for (size_t q = want.count; q-- > 0;) shards_[want.At(q)].mu.unlock();
    ++retries;
    want = next;
    if (next.overflow || attempt >= options_.max_lock_retries) {
      lock_all = true;
      ++fallbacks;
    }
  }

  // Deliver any flushed buffer outside the locks (the registry counters
  // are themselves atomic); a batch that stays under the flush threshold
  // costs zero registry touches here.
  ApplyMirror(flush);
  if (phase_sampled) {
    RecordPhase(TxnPhase::kAdmission, admission_ns, phase_tag);
    RecordPhase(TxnPhase::kLock, lock_ns, phase_tag);
    RecordPhase(TxnPhase::kDecide,
                decide_ns > mv_read_ns ? decide_ns - mv_read_ns : 0,
                phase_tag);
    if (options_.multiversion) {
      RecordPhase(TxnPhase::kMvRead, mv_read_ns, phase_tag);
    }
  }
  return accepted;
}

void ShardedMtkEngine::CommitTxn(TxnId txn) {
  Shard& sh = ShardForTxn(txn);
  FlightRecorder* const flight = options_.flight;
  // The commit record's ring slot is always cold (slots cycle); start the
  // lines toward L1 now so the record inside the commit-point lock below
  // does not stall on them.
  if (flight != nullptr) flight->PrefetchNext(txn);
  // Commit-side phase attribution, sampled on its own sequence (a commit
  // is not tied to any one batch): wal_append / fsync / ack.
  const bool sampled = SamplePhases(commit_seq_);
  uint64_t wal_append_ns = 0;
  uint64_t fsync_ns = 0;
  uint64_t ack_ns = 0;
  TimestampVector fvec(options_.k);  // Flight record's committed vector.
  std::vector<ItemId> writes;
  if (options_.wal != nullptr) {
    // Snapshot the vector and write set under the lock, then log OUTSIDE
    // it: AppendCommit may fdatasync, and holding a shard mutex across a
    // disk sync would stall every peer on that shard. The caller owns the
    // transaction, so nothing mutates its state between the two sections.
    TimestampVector ts(options_.k);
    {
      std::lock_guard<std::mutex> g(sh.mu);
      TxnState& s = StateLocked(sh, txn);
      assert(!LifeAborted(s.life));
      ts = s.ts;
      writes.swap(s.writes);
    }
    if (!writes.empty()) {
      // Write-ahead ordering: the record reaches the log (and disk, per
      // the WAL's sync policy) before the commit point below makes the
      // state observable as committed. Read-only transactions skip the
      // log - they leave no state for recovery to rebuild.
      if (sampled) {
        // The ticket's sync_wait_us isolates the fdatasync the append ran
        // from the encode + buffer time around it.
        WalAppendTicket ticket;
        const uint64_t t0 = NowNs();
        options_.wal->AppendCommit(txn, ts, writes, &ticket);
        const uint64_t total_ns = NowNs() - t0;
        fsync_ns = ticket.sync_wait_us * 1000;
        wal_append_ns = total_ns > fsync_ns ? total_ns - fsync_ns : 0;
      } else {
        options_.wal->AppendCommit(txn, ts, writes);
      }
    }
    if (flight != nullptr) fvec = std::move(ts);
  }
  {
    const uint64_t t0 = sampled ? NowNs() : 0;
    std::lock_guard<std::mutex> g(sh.mu);
    TxnState& s = StateLocked(sh, txn);
    const uint64_t w = s.life;
    assert(!LifeAborted(w));
    StoreLife(s, w | 2);
    if (m_commits_ != nullptr) m_commits_->Add(1);
    // Without a WAL the write set is still needed by multiversion mode
    // (commit-side chain pruning below); grab it here in that case. The
    // flight record reads it in place instead - see below.
    if (options_.multiversion && writes.empty()) writes.swap(s.writes);
    if (sampled) ack_ns = NowNs() - t0;
    if (flight != nullptr) {
      // Recorded under the commit-point lock, straight from the live
      // state: on the WAL-less path the vector is read in place and the
      // write set comes from the fixed-size fw fields DecideLocked
      // maintained (no copy, no swap-and-free, no mask loop per commit -
      // a record is ~30 ns end to end and any of those would double it).
      uint32_t phase_us[kNumTxnPhases] = {};
      if (sampled) {
        phase_us[static_cast<size_t>(TxnPhase::kWalAppend)] =
            static_cast<uint32_t>(wal_append_ns / 1000);
        phase_us[static_cast<size_t>(TxnPhase::kFsync)] =
            static_cast<uint32_t>(fsync_ns / 1000);
        phase_us[static_cast<size_t>(TxnPhase::kAck)] =
            static_cast<uint32_t>(ack_ns / 1000);
      }
      if (options_.wal == nullptr && !options_.multiversion) {
        const uint32_t kept =
            std::min<uint32_t>(s.fw_total, FlightRecorder::kMaxWrites);
        flight->RecordCommit(txn, txn, s.ts,
                             s.fw_mask | ShardBit(sh.index),
                             std::span<const ItemId>(s.fw, kept), s.fw_total,
                             sampled ? phase_us : nullptr,
                             FlightRecorder::CoarseNowUs());
      } else {
        // WAL / multiversion commits already own the full write list
        // (swapped out of `s` by the sections above).
        uint32_t mask = ShardBit(sh.index);
        for (const ItemId x : writes) mask |= ShardBit(ShardIndex(x));
        flight->RecordCommit(txn, txn, options_.wal != nullptr ? fvec : s.ts,
                             mask, writes, sampled ? phase_us : nullptr,
                             FlightRecorder::CoarseNowUs());
      }
    }
  }
  if (sampled) {
    if (options_.wal != nullptr) {
      RecordPhase(TxnPhase::kWalAppend, wal_append_ns, txn);
      RecordPhase(TxnPhase::kFsync, fsync_ns, txn);
    }
    RecordPhase(TxnPhase::kAck, ack_ns, txn);
  }
  if (options_.multiversion && !writes.empty()) {
    // Commit-side GC: prune the chains this transaction wrote against the
    // last sweep's watermark, bounding live versions between CompactAll
    // sweeps at the cost of one single-shard lock per written item. The
    // stored watermark only lags the true one (a stale minimum is
    // conservative), and unlink/prune only drop permanently-dead or
    // watermark-invisible state, so shard(item)'s lock alone suffices.
    std::sort(writes.begin(), writes.end());
    writes.erase(std::unique(writes.begin(), writes.end()), writes.end());
    const uint64_t wm = mv_watermark_.load(std::memory_order_acquire);
    // Epoch read before the scrub: any death ordered before this load is
    // seen by the unlink, so stamping the items with it is conservative.
    const uint64_t dead_epoch = mv_dead_epoch_.load(std::memory_order_acquire);
    MirrorDelta flush;
    for (const ItemId x : writes) {
      Shard& shx = ShardForItem(x);
      MirrorDelta mir;
      LockShard(shx);
      ItemState& item = ItemLocked(shx, x);
      MvUnlinkDeadLocked(shx, item, mir);
      item.mv_unlink_epoch = dead_epoch;
      MvPruneLocked(shx, item, wm, mir);
      if (m_accepted_ != nullptr) {
        mir.events += 1;
        MergePendingLocked(shx, mir, &flush);
      }
      shx.mu.unlock();
    }
    ApplyMirror(flush);
  }
  // A commit is exactly what the livelock guardrail waits for: reset the
  // commit-free streak and depose the champion once it gets through.
  batches_since_commit_.store(0, std::memory_order_relaxed);
  uint64_t champ = fallback_champion_.load(std::memory_order_relaxed);
  if (champ == static_cast<uint64_t>(txn)) {
    fallback_champion_.compare_exchange_strong(champ, 0,
                                               std::memory_order_acq_rel);
    champion_missing_.store(0, std::memory_order_relaxed);
  }
  if (options_.compact_every > 0 &&
      commits_since_compact_.fetch_add(1, std::memory_order_relaxed) + 1 >=
          options_.compact_every) {
    commits_since_compact_.store(0, std::memory_order_relaxed);
    CompactAll();
  }
}

void ShardedMtkEngine::RestartTxn(TxnId txn) {
  Shard& sh = ShardForTxn(txn);
  std::lock_guard<std::mutex> g(sh.mu);
  TxnState& s = StateLocked(sh, txn);
  const uint64_t w = s.life;
  assert(LifeAborted(w));
  (void)w;
  // One store bumps the incarnation and clears both flags, so the previous
  // incarnation's item accesses turn permanently dead.
  StoreLife(s, (static_cast<uint64_t>(LifeIncarnation(w)) + 1) << 2);
  // The new incarnation number is the transaction's consecutive-abort
  // count (a txn id commits at most once, so incarnations only ever come
  // from restarts); the gauge holds the window peak until a sampler's
  // watchdog consumes it.
  if (m_consec_aborts_ != nullptr) {
    m_consec_aborts_->SetMax(static_cast<int64_t>(LifeIncarnation(w)) + 1);
  }
  if (!options_.starvation_fix) {
    s.ts.Reset();  // Fresh, fully undefined vector.
  }
  // With the fix the seeded vector from the rejection is kept.
  s.writes.clear();   // The dead incarnation's writes are never logged.
  s.fw_total = 0;     // ...and neither is its flight-tracked set.
  s.fw_mask = 0;
  s.begin_stamp = 0;  // The new incarnation re-pins its GC horizon.
}

bool ShardedMtkEngine::IsAborted(TxnId txn) const {
  if (txn == kVirtualTxn) return false;
  Shard& sh = ShardForTxn(txn);
  const uint32_t slot = static_cast<uint32_t>(txn / num_shards_);
  if (slot < sh.base_slot.load(std::memory_order_acquire)) return false;
  const TxnState* s = PeekState(txn);
  return s != nullptr && LifeAborted(LoadLife(*s));
}

bool ShardedMtkEngine::IsCommitted(TxnId txn) const {
  if (txn == kVirtualTxn) return true;
  Shard& sh = ShardForTxn(txn);
  const uint32_t slot = static_cast<uint32_t>(txn / num_shards_);
  // Only committed states are released.
  if (slot < sh.base_slot.load(std::memory_order_acquire)) return true;
  const TxnState* s = PeekState(txn);
  return s != nullptr && LifeCommitted(LoadLife(*s));
}

TimestampVector ShardedMtkEngine::TsSnapshot(TxnId txn) const {
  if (txn == kVirtualTxn) return t0_.ts;
  Shard& sh = ShardForTxn(txn);
  std::lock_guard<std::mutex> g(sh.mu);
  return const_cast<ShardedMtkEngine*>(this)->StateLocked(sh, txn).ts;
}

size_t ShardedMtkEngine::CompactAll() {
  MDTS_TRACE_SPAN("engine.compact");
  for (Shard& sh : shards_) LockShard(sh);
  const size_t released = CompactAllLocked();
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
    it->mu.unlock();
  }
  return released;
}

size_t ShardedMtkEngine::CompactAllLocked() {
  const bool mv = options_.multiversion;
  if (mv) {
    // 1-MV. Exact live watermark: with every shard lock held, no liveness
    // word or begin stamp can move, so the minimum begin stamp over live
    // (neither committed nor aborted) incarnations is stable. With no live
    // transaction the watermark passes the whole clock, allowing every
    // chain to shrink to its newest committed version.
    uint64_t wm = mv_stamp_.load(std::memory_order_relaxed) + 1;
    for (Shard& sh : shards_) {
      for (uint32_t slot = sh.base_slot.load(std::memory_order_relaxed);
           slot < sh.next_slot; ++slot) {
        Chunk* c = sh.dir[slot >> kChunkBits].load(std::memory_order_relaxed);
        if (c == nullptr) {
          slot |= kChunkSize - 1;  // Skip the rest of the missing chunk.
          continue;
        }
        const TxnState& s = c->states[slot & (kChunkSize - 1)];
        const uint64_t w = s.life;
        if (!LifeAborted(w) && !LifeCommitted(w) && s.begin_stamp != 0 &&
            s.begin_stamp < wm) {
          wm = s.begin_stamp;
        }
      }
    }
    mv_watermark_.store(wm, std::memory_order_release);
    // Every shard lock is held, so the epoch read here covers every death
    // the sweep's unlinks will observe.
    const uint64_t dead_epoch = mv_dead_epoch_.load(std::memory_order_acquire);
    MirrorDelta mir;
    for (Shard& sh : shards_) {
      for (ItemState& item : sh.items) {
        MvUnlinkDeadLocked(sh, item, mir);
        item.mv_unlink_epoch = dead_epoch;
        MvPruneLocked(sh, item, wm, mir, /*force=*/true);
      }
    }
    if (m_accepted_ != nullptr && (mir.versions_gc != 0 || mir.events != 0)) {
      mir.events += 1;
      shards_[0].pending.MergeFrom(mir);  // Delivered at the next flush.
    }
  } else {
    // 1. Truncate every item history to its live top (Section III-D-6a/b).
    for (Shard& sh : shards_) {
      for (ItemState& item : sh.items) {
        const LiveRef r = TopLiveOf(item.top_reader, item.readers);
        const LiveRef w = TopLiveOf(item.top_writer, item.writers);
        item.readers.clear();
        item.writers.clear();
        if (r.txn != kVirtualTxn) {
          item.readers.push_back({r.txn, r.incarnation});
          item.top_reader = item.readers.back();
        }
        if (w.txn != kVirtualTxn) {
          item.writers.push_back({w.txn, w.incarnation});
          item.top_writer = item.writers.back();
        }
      }
    }
  }

  // 2. Smallest slot still referenced by any item, per transaction shard.
  // Multiversion chains reference transactions through version writers and
  // readers (the stacks stay empty), and a referenced state must survive:
  // PeekState on a released chunk would dangle.
  std::vector<uint32_t> min_ref(num_shards_);
  for (size_t t = 0; t < num_shards_; ++t) min_ref[t] = shards_[t].next_slot;
  auto note_ref = [&](const Access& a) {
    if (a.txn == kVirtualTxn) return;
    const size_t t = a.txn % num_shards_;
    min_ref[t] =
        std::min(min_ref[t], static_cast<uint32_t>(a.txn / num_shards_));
  };
  for (Shard& sh : shards_) {
    for (const ItemState& item : sh.items) {
      for (const Access& a : item.readers) note_ref(a);
      for (const Access& a : item.writers) note_ref(a);
      if (mv && item.mv_init) {
        for (const MvVersion& v : item.mv_older) {
          note_ref(v.writer);
          for (const Access& r : v.readers) note_ref(r);
        }
        note_ref(item.mv_newest.writer);
        for (const Access& r : item.mv_newest.readers) note_ref(r);
      }
    }
  }

  // 3. Advance each shard's base over committed unreferenced states and
  // free chunks it has fully passed.
  size_t total = 0;
  for (Shard& sh : shards_) {
    const uint32_t old_base = sh.base_slot.load(std::memory_order_relaxed);
    uint32_t slot = old_base;
    const uint32_t stop = min_ref[sh.index];
    while (slot < stop) {
      Chunk* c = sh.dir[slot >> kChunkBits].load(std::memory_order_relaxed);
      if (c == nullptr) break;  // A never-created gap blocks, as the
                                // auto-created states do in MtkScheduler.
      if (!LifeCommitted(c->states[slot & (kChunkSize - 1)].life)) break;
      ++slot;
    }
    if (slot > old_base) {
      for (uint32_t ci = old_base >> kChunkBits;
           static_cast<uint64_t>(ci + 1) * kChunkSize <= slot; ++ci) {
        delete sh.dir[ci].load(std::memory_order_relaxed);
        sh.dir[ci].store(nullptr, std::memory_order_release);
      }
      sh.base_slot.store(slot, std::memory_order_release);
      sh.stats.txns_released += slot - old_base;
      total += slot - old_base;
    }
  }
  ++shards_[0].stats.compactions;
  if (m_compactions_ != nullptr) m_compactions_->Add(1);
  return total;
}

size_t ShardedMtkEngine::RecoverFrom(const WalRecovery& recovery) {
  if (!recovery.ok) {
    throw std::invalid_argument("RecoverFrom: unusable recovery: " +
                                recovery.error);
  }
  // An empty recovery (every stream lost before its header synced) carries
  // no k of its own; there is nothing to apply and nothing to mismatch.
  if (recovery.records.empty()) return 0;
  if (recovery.k != options_.k) {
    throw std::invalid_argument(
        "RecoverFrom: recovered k=" + std::to_string(recovery.k) +
        " does not match engine k=" + std::to_string(options_.k));
  }
  MDTS_TRACE_SPAN("engine.recover");
  for (Shard& sh : shards_) LockShard(sh);
  const TsElement n = static_cast<TsElement>(num_shards_);
  size_t applied = 0;
  for (const WalCommitRecord& r : recovery.records) {
    if (r.txn == kVirtualTxn) continue;
    Shard& shi = ShardForTxn(r.txn);
    TxnState& s = StateLocked(shi, r.txn);
    s.ts = r.vec;
    StoreLife(s, 2);  // Committed, incarnation 0.
    // Counter resynchronization, the DMT(k) Section V recovery rule
    // applied intra-process: every defined element belongs to the counter
    // class value % N; push that shard's counter past it so post-recovery
    // assignments never reuse or undercut a recovered value. Scanning all
    // columns is conservative (middle columns mostly hold constants) but
    // the only cost is counters skipping a few values.
    for (size_t m = 0; m < options_.k; ++m) {
      if (!r.vec.IsDefined(m)) continue;
      const TsElement v = r.vec.Get(m);
      const TsElement cls = ((v % n) + n) % n;
      const TsElement raw = (v - cls) / n;
      Shard& shc = shards_[static_cast<size_t>(cls)];
      if (v >= 0) {
        shc.ucount = std::max(shc.ucount, raw + 1);
      } else {
        shc.lcount = std::min(shc.lcount, raw - 1);
      }
    }
    ++applied;
  }
  if (options_.multiversion) {
    // Rebuild the version chains from the merged record order: the merge
    // visits commit records in vector order, so installing each logged
    // write at the newest position reproduces the chains' version order.
    // Reader state is not logged (reads leave nothing to rebuild), so
    // recovered versions carry no readers.
    MirrorDelta mir;
    for (size_t idx = 0; idx < recovery.records.size(); ++idx) {
      const WalCommitRecord& r = recovery.records[idx];
      if (r.txn == kVirtualTxn) continue;
      for (const ItemId x : r.writes) {
        Shard& shx = ShardForItem(x);
        ItemState& it = ItemLocked(shx, x);
        EnsureChainLocked(it);
        const uint64_t stamp =
            mv_stamp_.fetch_add(1, std::memory_order_relaxed);
        it.mv_older.push_back(std::move(it.mv_newest));
        it.mv_older.back().end_stamp = stamp;
        it.mv_newest = MvVersion{};
        it.mv_newest.writer = {r.txn, 0};
        it.mv_newest.begin_stamp = stamp;
        ++shx.stats.versions_installed;
        ++mir.versions_installed;
        live_versions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Every recovered transaction is committed and nothing is live yet:
    // the watermark passes the whole clock and each chain prunes down to
    // its newest committed version.
    const uint64_t wm = mv_stamp_.load(std::memory_order_relaxed) + 1;
    mv_watermark_.store(wm, std::memory_order_release);
    for (Shard& sh : shards_) {
      for (ItemState& it : sh.items) {
        MvUnlinkDeadLocked(sh, it, mir);
        MvPruneLocked(sh, it, wm, mir, /*force=*/true);
      }
    }
    if (m_accepted_ != nullptr) {
      mir.events += 1;
      shards_[0].pending.MergeFrom(mir);  // Delivered at the next flush.
    }
  } else {
    // Reinstall the per-item committed top writers from the merged order;
    // reader state is not logged (reads leave nothing to rebuild), so the
    // recovered items start with virtual-T0 reader tops.
    for (const auto& [item, idx] : recovery.item_writer) {
      const WalCommitRecord& r = recovery.records[idx];
      Shard& shx = ShardForItem(item);
      ItemState& it = ItemLocked(shx, item);
      it.readers.clear();
      it.top_reader = Access{};
      it.writers.clear();
      it.writers.push_back({r.txn, 0});
      it.top_writer = it.writers.back();
    }
  }
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
    it->mu.unlock();
  }
  return applied;
}

bool ShardedMtkEngine::MvAuditChains() const {
  if (!options_.multiversion) return true;
  auto* self = const_cast<ShardedMtkEngine*>(this);
  for (Shard& sh : shards_) self->LockShard(sh);
  bool ok = true;
  auto live = [&](const Access& a) {
    if (a.txn == kVirtualTxn) return true;
    const uint64_t w = LoadLife(*PeekState(a.txn));
    return LifeIncarnation(w) == a.incarnation && !LifeAborted(w);
  };
  for (Shard& sh : shards_) {
    for (const ItemState& item : sh.items) {
      if (!item.mv_init || !ok) continue;
      const TxnState* prev = nullptr;
      const size_t chain_len = item.mv_older.size() + 1;
      for (size_t v = 0; v < chain_len && ok; ++v) {
        const MvVersion& ver = v < item.mv_older.size()
                                   ? item.mv_older[v]
                                   : item.mv_newest;
        // End stamps: 0 exactly on the newest version.
        if ((ver.end_stamp == 0) != (v == chain_len - 1)) ok = false;
        if (!live(ver.writer)) continue;  // Unlinked at the next touch.
        const TxnState* cur = PeekState(ver.writer.txn);
        // Consecutive versions by the same writer need no mutual order;
        // distinct live writers must have their order encoded.
        if (prev != nullptr && prev != cur &&
            Compare(prev->ts, cur->ts).order != VectorOrder::kLess) {
          ok = false;  // Version order not (or no longer) encoded.
        }
        prev = cur;
      }
    }
  }
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
    it->mu.unlock();
  }
  return ok;
}

EngineStats ShardedMtkEngine::stats() const {
  EngineStats out;
  MirrorDelta flush;
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> g(sh.mu);
    const EngineStats& s = sh.stats;
    out.accepted += s.accepted;
    out.rejected += s.rejected;
    out.ignored_writes += s.ignored_writes;
    out.set_calls += s.set_calls;
    out.elements_assigned += s.elements_assigned;
    out.element_comparisons += s.element_comparisons;
    out.txns_released += s.txns_released;
    out.single_shard_ops += s.single_shard_ops;
    out.cross_shard_ops += s.cross_shard_ops;
    out.lock_retries += s.lock_retries;
    out.full_lock_fallbacks += s.full_lock_fallbacks;
    out.lock_contention += s.lock_contention;
    out.compactions += s.compactions;
    out.hot_encodings += s.hot_encodings;
    out.versions_installed += s.versions_installed;
    out.versions_gc += s.versions_gc;
    out.old_version_reads += s.old_version_reads;
    out.read_rejects += s.read_rejects;
    out.reject_reasons += s.reject_reasons;
    // An observation point: drain every pending mirror buffer so the
    // registry snapshot reconciles exactly with the returned stats.
    if (m_accepted_ != nullptr && sh.pending.events != 0) {
      flush.MergeFrom(sh.pending);
      sh.pending = MirrorDelta{};
    }
  }
  out.batches = batches_.load(std::memory_order_relaxed);
  out.batch_ops = batch_ops_.load(std::memory_order_relaxed);
  out.batch_fallbacks = batch_fallbacks_.load(std::memory_order_relaxed);
  const int64_t lv = live_versions_.load(std::memory_order_relaxed);
  out.live_versions = lv < 0 ? 0 : static_cast<uint64_t>(lv);
  auto* self = const_cast<ShardedMtkEngine*>(this);
  self->ApplyMirror(flush);
  if (options_.multiversion && m_live_versions_ != nullptr) {
    m_live_versions_->Set(lv < 0 ? 0 : lv);
  }
  return out;
}

size_t ShardedMtkEngine::allocated_txn_states() const {
  size_t total = 0;
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> g(sh.mu);
    for (const auto& entry : sh.dir) {
      if (entry.load(std::memory_order_relaxed) != nullptr) {
        total += kChunkSize;
      }
    }
  }
  return total;
}

}  // namespace mdts
