#include "workload/generator.h"

#include <algorithm>
#include <cassert>

namespace mdts {

std::vector<std::vector<Op>> GenerateTxnPrograms(
    const WorkloadOptions& options, Rng* rng) {
  assert(options.num_txns >= 1);
  assert(options.num_items >= 1);
  assert(options.min_ops >= 1 && options.min_ops <= options.max_ops);

  ZipfPicker picker(options.num_items, options.zipf_theta);
  std::vector<std::vector<Op>> programs(options.num_txns);
  for (TxnId t = 1; t <= options.num_txns; ++t) {
    const size_t q = static_cast<size_t>(
        rng->Uniform(options.min_ops, options.max_ops));
    std::vector<Op>& ops = programs[t - 1];
    std::vector<bool> used(options.num_items, false);
    size_t used_count = 0;
    for (size_t o = 0; o < q; ++o) {
      ItemId item = static_cast<ItemId>(picker.Pick(rng));
      if (options.distinct_items_per_txn) {
        if (used_count >= options.num_items) break;  // All items taken.
        while (used[item]) item = static_cast<ItemId>(picker.Pick(rng));
        used[item] = true;
        ++used_count;
      }
      const OpType type = rng->Chance(options.read_fraction)
                              ? OpType::kRead
                              : OpType::kWrite;
      ops.push_back(Op{t, type, item});
    }
    if (options.two_step) {
      // Stable partition keeps per-kind item order: reads first, writes
      // after, as in the two-step transaction model.
      std::stable_partition(ops.begin(), ops.end(), [](const Op& op) {
        return op.type == OpType::kRead;
      });
    }
  }
  return programs;
}

Log InterleavePrograms(const std::vector<std::vector<Op>>& programs,
                       Rng* rng) {
  std::vector<size_t> next(programs.size(), 0);
  size_t remaining = 0;
  for (const auto& p : programs) remaining += p.size();

  Log log;
  while (remaining > 0) {
    // Pick the next operation from a random transaction, weighted by its
    // remaining length so the interleaving is uniform over all shuffles.
    int64_t target = rng->Uniform(1, static_cast<int64_t>(remaining));
    for (size_t t = 0; t < programs.size(); ++t) {
      const int64_t left = static_cast<int64_t>(programs[t].size() - next[t]);
      if (target <= left) {
        log.Append(programs[t][next[t]++]);
        --remaining;
        break;
      }
      target -= left;
    }
  }
  return log;
}

Log GenerateLog(const WorkloadOptions& options) {
  Rng rng(options.seed);
  const auto programs = GenerateTxnPrograms(options, &rng);
  return InterleavePrograms(programs, &rng);
}

}  // namespace mdts
