#include "workload/trace.h"

#include <fstream>
#include <sstream>

namespace mdts {

Status SaveLogToFile(const Log& log, const std::string& path,
                     const std::string& comment) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  if (!comment.empty()) {
    std::istringstream lines(comment);
    std::string line;
    while (std::getline(lines, line)) out << "# " << line << "\n";
  }
  out << "# " << log.num_txns() << " transactions, " << log.num_items()
      << " items, " << log.size() << " operations\n";
  for (const Op& op : log.ops()) out << OpName(op) << "\n";
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::Ok();
}

Result<Log> LoadLogFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string text;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    text += line;
    text += ' ';
  }
  return Log::Parse(text);
}

}  // namespace mdts
