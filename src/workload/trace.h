#ifndef MDTS_WORKLOAD_TRACE_H_
#define MDTS_WORKLOAD_TRACE_H_

#include <string>

#include "common/result.h"
#include "core/log.h"

namespace mdts {

/// Saves the log in the textual trace format: one operation per line in
/// the paper's notation, '#' comment lines allowed, blank lines ignored.
/// Returns an error if the file cannot be written.
Status SaveLogToFile(const Log& log, const std::string& path,
                     const std::string& comment = "");

/// Loads a log from the trace format written by SaveLogToFile (also
/// accepts multiple operations per line).
Result<Log> LoadLogFromFile(const std::string& path);

}  // namespace mdts

#endif  // MDTS_WORKLOAD_TRACE_H_
