#ifndef MDTS_WORKLOAD_GENERATOR_H_
#define MDTS_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/log.h"

namespace mdts {

/// Parameters of the synthetic transaction-log generator. The generator is
/// deterministic given a seed: every experiment in the repository is
/// reproducible.
struct WorkloadOptions {
  /// Number of transactions (ids 1..num_txns).
  uint32_t num_txns = 10;

  /// Number of database items (0..num_items-1).
  uint32_t num_items = 20;

  /// Operations per transaction, drawn uniformly from [min_ops, max_ops]
  /// (the paper's q is max_ops).
  uint32_t min_ops = 2;
  uint32_t max_ops = 4;

  /// Probability that an operation is a read.
  double read_fraction = 0.5;

  /// Zipf skew for item selection; 0 = uniform, larger = hotter hot items.
  double zipf_theta = 0.0;

  /// If true, each transaction's reads all precede its writes (the paper's
  /// two-step transaction model).
  bool two_step = false;

  /// If true, a transaction never accesses the same item twice.
  bool distinct_items_per_txn = true;

  uint64_t seed = 1;
};

/// Generates per-transaction operation sequences and a uniformly random
/// interleaving of them.
Log GenerateLog(const WorkloadOptions& options);

/// Generates only the per-transaction operation sequences (no
/// interleaving); useful for the online simulator, which interleaves
/// according to simulated time.
std::vector<std::vector<Op>> GenerateTxnPrograms(const WorkloadOptions& options,
                                                 Rng* rng);

/// Interleaves fixed per-transaction programs uniformly at random
/// (preserving each program's internal order).
Log InterleavePrograms(const std::vector<std::vector<Op>>& programs, Rng* rng);

}  // namespace mdts

#endif  // MDTS_WORKLOAD_GENERATOR_H_
