#ifndef MDTS_WORKLOAD_ENUMERATE_H_
#define MDTS_WORKLOAD_ENUMERATE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/log.h"

namespace mdts {

/// Calls fn for every interleaving of the given per-transaction operation
/// sequences (preserving each sequence's internal order). Transaction ids
/// inside the sequences are taken as given. Enumeration stops early if fn
/// returns false. Returns false iff stopped early.
bool ForEachInterleaving(const std::vector<std::vector<Op>>& programs,
                         const std::function<bool(const Log&)>& fn);

/// Calls fn for every two-step log with num_txns transactions over
/// num_items items, where transaction T_i is R_i[a_i] W_i[b_i] for every
/// choice of items a_i, b_i and every interleaving. This is the exhaustive
/// universe used to regenerate the paper's Fig. 4 hierarchy (q = 2).
/// Enumeration stops early if fn returns false; returns false iff stopped.
bool ForEachTwoStepLog(TxnId num_txns, ItemId num_items,
                       const std::function<bool(const Log&)>& fn);

/// Number of interleavings of sequences with the given lengths
/// (multinomial coefficient); guards against accidental explosion in tests.
uint64_t CountInterleavings(const std::vector<size_t>& lengths);

}  // namespace mdts

#endif  // MDTS_WORKLOAD_ENUMERATE_H_
