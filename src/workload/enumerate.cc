#include "workload/enumerate.h"

namespace mdts {

namespace {

bool InterleaveRecurse(const std::vector<std::vector<Op>>& programs,
                       std::vector<size_t>* next, std::vector<Op>* ops,
                       const std::function<bool(const Log&)>& fn) {
  bool any_left = false;
  for (size_t t = 0; t < programs.size(); ++t) {
    if ((*next)[t] >= programs[t].size()) continue;
    any_left = true;
    ops->push_back(programs[t][(*next)[t]]);
    ++(*next)[t];
    const bool keep_going = InterleaveRecurse(programs, next, ops, fn);
    --(*next)[t];
    ops->pop_back();
    if (!keep_going) return false;
  }
  if (!any_left) return fn(Log(*ops));
  return true;
}

}  // namespace

bool ForEachInterleaving(const std::vector<std::vector<Op>>& programs,
                         const std::function<bool(const Log&)>& fn) {
  std::vector<size_t> next(programs.size(), 0);
  std::vector<Op> ops;
  return InterleaveRecurse(programs, &next, &ops, fn);
}

bool ForEachTwoStepLog(TxnId num_txns, ItemId num_items,
                       const std::function<bool(const Log&)>& fn) {
  // Item choices: 2 * num_txns digits in base num_items (read item and
  // write item per transaction).
  const size_t digits = 2 * static_cast<size_t>(num_txns);
  std::vector<ItemId> choice(digits, 0);
  while (true) {
    std::vector<std::vector<Op>> programs(num_txns);
    for (TxnId t = 1; t <= num_txns; ++t) {
      programs[t - 1] = {Op{t, OpType::kRead, choice[2 * (t - 1)]},
                         Op{t, OpType::kWrite, choice[2 * (t - 1) + 1]}};
    }
    if (!ForEachInterleaving(programs, fn)) return false;

    // Next item-choice vector (odometer).
    size_t d = 0;
    while (d < digits) {
      if (++choice[d] < num_items) break;
      choice[d] = 0;
      ++d;
    }
    if (d == digits) return true;
  }
}

uint64_t CountInterleavings(const std::vector<size_t>& lengths) {
  // Multinomial (sum len_i)! / prod(len_i!), computed as a product of
  // binomial coefficients; every intermediate value is integral.
  uint64_t result = 1;
  uint64_t placed = 0;
  for (size_t len : lengths) {
    for (size_t i = 1; i <= len; ++i) {
      ++placed;
      result = result * placed / i;
    }
  }
  return result;
}

}  // namespace mdts
