#ifndef MDTS_MVCC_MV_ONLINE_H_
#define MDTS_MVCC_MV_ONLINE_H_

#include <string>

#include "mvcc/mv_scheduler.h"
#include "sched/scheduler.h"

namespace mdts {

/// Adapter of the multiversion MT(k) scheduler to the uniform online
/// Scheduler interface, for the discrete-event simulator and the
/// cross-protocol benches.
///
/// Note on auditing: multiversion histories are one-copy serializable
/// rather than conflict-serializable over the flat operation sequence
/// (reads may be served by old versions), so the simulator's single-version
/// DSR audit does not apply; use MvMtkScheduler::AuditMvsgAcyclic()
/// instead.
class MvOnline : public Scheduler {
 public:
  explicit MvOnline(const MvMtkOptions& options)
      : inner_(options), options_(options) {}

  std::string name() const override {
    return "MV-MT(" + std::to_string(options_.k) + ")";
  }

  SchedOutcome OnOperation(const Op& op) override {
    if (op.txn == kVirtualTxn) return RecordAbort(AbortReason::kInvalidOp);
    const bool was_dead =
        inner_.IsAborted(op.txn) || inner_.IsCommitted(op.txn);
    switch (inner_.Process(op)) {
      case OpDecision::kAccept:
        return SchedOutcome::kAccepted;
      case OpDecision::kIgnore:
        return SchedOutcome::kIgnored;
      case OpDecision::kReject:
        // Genuine MV rejections are order conflicts (a live reader or
        // writer already ordered after T_i); dead transactions are stale.
        return RecordAbort(was_dead ? AbortReason::kStaleTxn
                                    : AbortReason::kLexOrder);
    }
    return RecordAbort(AbortReason::kInvalidOp);
  }

  SchedOutcome OnCommit(TxnId txn) override {
    inner_.CommitTxn(txn);
    return SchedOutcome::kAccepted;
  }

  void OnRestart(TxnId txn) override { inner_.RestartTxn(txn); }

  MvMtkScheduler& inner() { return inner_; }

 private:
  MvMtkScheduler inner_;
  MvMtkOptions options_;
};

}  // namespace mdts

#endif  // MDTS_MVCC_MV_ONLINE_H_
