#include "mvcc/mv_scheduler.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace mdts {

MvMtkScheduler::MvMtkScheduler(const MvMtkOptions& options)
    : options_(options), vectors_(options.k) {
  txns_.resize(1);
  txns_[0].committed = true;  // The virtual T0.
}

MvMtkScheduler::TxnState& MvMtkScheduler::State(TxnId txn) {
  if (txns_.size() <= txn) txns_.resize(txn + 1);
  return txns_[txn];
}

MvMtkScheduler::ItemState& MvMtkScheduler::Item(ItemId item) {
  if (items_.size() <= item) items_.resize(item + 1);
  ItemState& state = items_[item];
  if (state.versions.empty()) {
    state.versions.push_back(Version{kVirtualTxn, 0, {}});
  }
  return state;
}

bool MvMtkScheduler::IsLiveTxn(TxnId txn, uint32_t incarnation) {
  const TxnState& s = State(txn);
  return txn == kVirtualTxn ||
         (s.incarnation == incarnation && !s.aborted);
}

bool MvMtkScheduler::IsLiveVersion(const Version& v) {
  return IsLiveTxn(v.writer, v.incarnation);
}

OpDecision MvMtkScheduler::Process(const Op& op) {
  const TxnId i = op.txn;
  ++ops_processed_;
  if (i == kVirtualTxn) {
    last_reject_ =
        RejectInfo{AbortReason::kInvalidOp, op, kVirtualTxn, ops_processed_};
    return OpDecision::kReject;
  }
  TxnState& state = State(i);
  if (state.aborted || state.committed) {
    last_reject_ =
        RejectInfo{AbortReason::kStaleTxn, op, kVirtualTxn, ops_processed_};
    return OpDecision::kReject;
  }
  ItemState& item = Item(op.item);

  if (op.type == OpType::kRead) {
    ++stats_.reads;
    // Walk versions newest -> oldest; take the first whose writer can be
    // ordered before T_i. A version whose writer is already ordered after
    // T_i lies in T_i's future and is skipped; the initial T0 version can
    // always be taken, so the walk practically never fails.
    size_t live_seen = 0;
    for (size_t v = item.versions.size(); v-- > 0;) {
      Version& version = item.versions[v];
      if (!IsLiveVersion(version)) continue;
      ++live_seen;
      if (version.writer == i) {
        return OpDecision::kAccept;  // Reads its own pending write.
      }
      if (vectors_.Set(version.writer, i)) {
        version.readers.push_back(Reader{i, state.incarnation});
        if (live_seen > 1) ++stats_.old_version_reads;
        return OpDecision::kAccept;
      }
    }
    ++stats_.read_rejects;  // Only reachable in degenerate vector states.
    state.aborted = true;
    // No single blocker: the whole chain - down to T0's version - refused.
    last_reject_ = RejectInfo{AbortReason::kEncodingExhausted, op,
                              kVirtualTxn, ops_processed_};
    return OpDecision::kReject;
  }

  ++stats_.writes;
  TxnId blocker = kVirtualTxn;  // For starvation seeding on rejection.
  auto reject_write = [&]() {
    ++stats_.write_rejects;
    state.aborted = true;
    last_reject_ = RejectInfo{AbortReason::kVersionConflict, op, blocker,
                              ops_processed_};
    if (options_.starvation_fix) vectors_.SeedAfter(i, blocker);
    return OpDecision::kReject;
  };
  // Two-phase placement. Phase 1 (no encoding): find the NEWEST feasible
  // insertion slot. Placing the new version after live slot j requires
  //  a) writer(j) not already ordered after T_i,
  //  b) T_i not already ordered after writer(j+1) (the chain handles the
  //     rest by transitivity),
  //  c) no live reader of any version up to slot j already ordered after
  //     T_i (the multiversion rule: a reader of an older version precedes
  //     the writer of every newer version).
  std::vector<size_t> live;  // Indices of live versions, oldest first.
  for (size_t v = 0; v < item.versions.size(); ++v) {
    if (IsLiveVersion(item.versions[v])) live.push_back(v);
  }

  auto determined = [&](TxnId a, TxnId b) {
    return vectors_.CompareIds(a, b).order;  // Order of a vs b.
  };

  // reader_after[j]: some live reader of live slot <= j is already ordered
  // after T_i (computed as a prefix property, oldest to newest).
  size_t chosen = live.size();  // Sentinel: no slot found yet.
  {
    bool blocked_by_reader = false;
    std::vector<bool> reader_block(live.size(), false);
    for (size_t lj = 0; lj < live.size(); ++lj) {
      for (const Reader& r : item.versions[live[lj]].readers) {
        if (r.txn == i || !IsLiveTxn(r.txn, r.incarnation)) continue;
        if (determined(i, r.txn) == VectorOrder::kLess) {
          blocked_by_reader = true;
          blocker = r.txn;
        }
      }
      reader_block[lj] = blocked_by_reader;
    }
    for (size_t lj = live.size(); lj-- > 0;) {
      const TxnId w = item.versions[live[lj]].writer;
      if (w != i && determined(w, i) == VectorOrder::kGreater) {
        continue;  // Writer already after T_i: slot too new.
      }
      if (lj + 1 < live.size()) {
        const TxnId next = item.versions[live[lj + 1]].writer;
        if (determined(i, next) == VectorOrder::kGreater) {
          continue;  // T_i already after the next writer: inconsistent.
        }
      }
      if (reader_block[lj]) continue;  // Readers up to here block; an
                                       // older slot may still be free.
      chosen = lj;
      break;
    }
  }
  if (chosen == live.size()) {
    return reject_write();
  }

  // Phase 2: encode the chosen placement. Each Set was pre-checked as
  // not-determined-opposite, but an earlier encode can incidentally fix a
  // later pair the wrong way; bail out safely (encodings only ever add
  // constraints) in that rare case.
  auto encode_all = [&]() {
    const TxnId pred = item.versions[live[chosen]].writer;
    if (pred != i && !vectors_.Set(pred, i)) {
      blocker = pred;
      return false;
    }
    if (chosen + 1 < live.size()) {
      const TxnId next = item.versions[live[chosen + 1]].writer;
      if (!vectors_.Set(i, next)) {
        blocker = next;
        return false;
      }
    }
    for (size_t lj = 0; lj <= chosen; ++lj) {
      for (const Reader& r : item.versions[live[lj]].readers) {
        if (r.txn == i || !IsLiveTxn(r.txn, r.incarnation)) continue;
        if (!vectors_.Set(r.txn, i)) {
          blocker = r.txn;
          return false;
        }
      }
    }
    return true;
  };
  if (!encode_all()) {
    return reject_write();
  }

  const size_t pos = live[chosen] + 1;
  item.versions.insert(item.versions.begin() + static_cast<long>(pos),
                       Version{i, state.incarnation, {}});
  ++stats_.versions_created;
  return OpDecision::kAccept;
}

std::string MvMtkScheduler::ExplainLastReject() {
  if (last_reject_.reason == AbortReason::kNone) return "no rejection yet";
  std::string out = FormatReject(OpName(last_reject_.op), last_reject_.reason,
                                 last_reject_.blocker);
  if (last_reject_.reason == AbortReason::kVersionConflict &&
      last_reject_.blocker != kVirtualTxn) {
    out += "; blocker vector " +
           std::string(vectors_.Ts(last_reject_.blocker).ToString());
  }
  return out;
}

void MvMtkScheduler::CommitTxn(TxnId txn) {
  TxnState& s = State(txn);
  assert(!s.aborted);
  s.committed = true;
}

void MvMtkScheduler::RestartTxn(TxnId txn) {
  TxnState& s = State(txn);
  s.aborted = false;
  s.committed = false;
  ++s.incarnation;  // Invalidates the old incarnation's versions/reads.
  // With the starvation fix the seeded vector from the abort is kept.
  if (!options_.starvation_fix) vectors_.Reset(txn);
}

bool MvMtkScheduler::IsAborted(TxnId txn) const {
  return txn < txns_.size() && txns_[txn].aborted;
}

bool MvMtkScheduler::IsCommitted(TxnId txn) const {
  return txn < txns_.size() && txns_[txn].committed;
}

size_t MvMtkScheduler::VersionCount(ItemId item) {
  size_t live = 0;
  for (const Version& v : Item(item).versions) {
    if (IsLiveVersion(v)) ++live;
  }
  return live;
}

void MvMtkScheduler::PruneVersions() {
  for (ItemId x = 0; x < items_.size(); ++x) {
    ItemState& item = items_[x];
    if (item.versions.empty()) continue;
    // Drop dead versions and dead readers.
    std::vector<Version> kept;
    for (Version& v : item.versions) {
      if (!IsLiveVersion(v)) continue;
      v.readers.erase(
          std::remove_if(v.readers.begin(), v.readers.end(),
                         [&](const Reader& r) {
                           return !IsLiveTxn(r.txn, r.incarnation);
                         }),
          v.readers.end());
      kept.push_back(std::move(v));
    }
    // Behind the newest committed version, committed versions with no
    // remaining readers can be reclaimed (nobody can ever need them: new
    // readers always reach a newer orderable version first).
    size_t newest_committed = kept.size();
    for (size_t v = kept.size(); v-- > 0;) {
      if (State(kept[v].writer).committed || kept[v].writer == kVirtualTxn) {
        newest_committed = v;
        break;
      }
    }
    std::vector<Version> out;
    for (size_t v = 0; v < kept.size(); ++v) {
      const bool reclaimable =
          v < newest_committed && kept[v].readers.empty() &&
          (kept[v].writer == kVirtualTxn ||
           State(kept[v].writer).committed);
      if (!reclaimable) out.push_back(std::move(kept[v]));
    }
    item.versions = std::move(out);
    if (item.versions.empty()) {
      item.versions.push_back(Version{kVirtualTxn, 0, {}});
    }
  }
}

bool MvMtkScheduler::AuditMvsgAcyclic() {
  // Build the multiversion serialization graph over committed transactions
  // plus T0, purely from the recorded version chains:
  //   writer(v_a) -> writer(v_b)   for versions a before b of one item,
  //   writer(v_a) -> r             for each committed reader r of v_a,
  //   r -> writer(v_b)             for each later version v_b.
  std::map<TxnId, std::map<TxnId, bool>> adj;
  auto committed = [&](TxnId t) {
    return t == kVirtualTxn || State(t).committed;
  };
  auto add_edge = [&](TxnId a, TxnId b) {
    if (a != b) adj[a][b] = true;
  };
  for (ItemId x = 0; x < items_.size(); ++x) {
    std::vector<const Version*> chain;
    for (const Version& v : items_[x].versions) {
      if (IsLiveVersion(v) && committed(v.writer)) chain.push_back(&v);
    }
    for (size_t a = 0; a < chain.size(); ++a) {
      for (size_t b = a + 1; b < chain.size(); ++b) {
        add_edge(chain[a]->writer, chain[b]->writer);
      }
      for (const Reader& r : chain[a]->readers) {
        if (!IsLiveTxn(r.txn, r.incarnation) || !committed(r.txn)) continue;
        add_edge(chain[a]->writer, r.txn);
        for (size_t b = a + 1; b < chain.size(); ++b) {
          add_edge(r.txn, chain[b]->writer);
        }
      }
    }
  }
  // Kahn's algorithm.
  std::map<TxnId, size_t> indegree;
  for (const auto& [from, tos] : adj) {
    indegree.emplace(from, 0);
    for (const auto& [to, _] : tos) indegree.emplace(to, 0);
  }
  for (const auto& [from, tos] : adj) {
    for (const auto& [to, _] : tos) ++indegree[to];
  }
  std::vector<TxnId> ready;
  for (const auto& [node, deg] : indegree) {
    if (deg == 0) ready.push_back(node);
  }
  size_t placed = 0;
  while (!ready.empty()) {
    const TxnId n = ready.back();
    ready.pop_back();
    ++placed;
    auto it = adj.find(n);
    if (it == adj.end()) continue;
    for (const auto& [to, _] : it->second) {
      if (--indegree[to] == 0) ready.push_back(to);
    }
  }
  return placed == indegree.size();
}

std::string MvMtkScheduler::DumpVersions(ItemId item) {
  std::string out = ItemName(item) + ":";
  for (const Version& v : Item(item).versions) {
    if (!IsLiveVersion(v)) continue;
    out += " [T" + std::to_string(v.writer) + " " +
           std::string(vectors_.Ts(v.writer).ToString()) + " readers:";
    bool first = true;
    for (const Reader& r : v.readers) {
      if (!IsLiveTxn(r.txn, r.incarnation)) continue;
      out += (first ? " " : ",") + std::string("T") + std::to_string(r.txn);
      first = false;
    }
    out += "]";
  }
  return out;
}

}  // namespace mdts
