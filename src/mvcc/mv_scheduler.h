#ifndef MDTS_MVCC_MV_SCHEDULER_H_
#define MDTS_MVCC_MV_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/mtk_scheduler.h"
#include "core/types.h"
#include "core/vector_table.h"

namespace mdts {

/// Options for the multiversion MT(k) scheduler.
struct MvMtkOptions {
  size_t k = 3;

  /// Section III-D-4 seeding applied to write rejections: the aborted
  /// writer restarts with its first element just past the blocking
  /// reader's, so its retry is ordered after the reader population that
  /// blocked it. Strongly recommended online: without it, continuously
  /// arriving readers (whose vectors keep floating later) can starve
  /// writers indefinitely - the multiversion analogue of MVTO's
  /// write-rejection weakness.
  bool starvation_fix = false;
};

/// Work counters of the multiversion scheduler.
struct MvMtkStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t read_rejects = 0;   // Practically impossible; see class comment.
  uint64_t write_rejects = 0;
  uint64_t versions_created = 0;
  uint64_t old_version_reads = 0;  // Reads served by a non-latest version.
};

/// Multiversion MT(k): the extension the paper sketches in Section
/// III-D-6d ("Reed proposed a multiple version concurrency control
/// mechanism using single-valued timestamps. The idea can be extended to
/// timestamp vectors").
///
/// Every write creates a new version of the item; versions of one item are
/// kept sorted by the (total, per item) Definition-6 order of their
/// writers' vectors. A read by T_i walks versions from newest to oldest
/// and takes the first whose writer can be ordered before T_i (encoding
/// the order if it was still undetermined): since the virtual T0's initial
/// version is always orderable before any transaction, reads essentially
/// never abort - the multiversion payoff - while the vector order keeps the
/// choice as late as single-version MT(k) would.
///
/// A write by T_i inserts its version after the newest version whose
/// writer precedes T_i. Every live reader of any version ordered before
/// the insertion point must be ordered before T_i as well (the
/// multiversion serialization-graph rule "a reader of an older version
/// precedes the writer of any newer version"); if some reader is already
/// ordered after T_i the write is rejected.
///
/// Soundness: every reads-from and version-order MVSG edge is encoded in
/// the vector partial order at creation, so the MVSG is acyclic and the
/// committed multiversion history is one-copy serializable.
/// AuditMvsgAcyclic() re-checks this claim independently, from the
/// recorded reads-from/version-order data alone.
class MvMtkScheduler {
 public:
  explicit MvMtkScheduler(const MvMtkOptions& options);

  MvMtkScheduler(const MvMtkScheduler&) = delete;
  MvMtkScheduler& operator=(const MvMtkScheduler&) = delete;

  /// Schedules one operation. Reads return kAccept unless the (corner-case)
  /// fallback fails; writes may return kReject, aborting the transaction.
  OpDecision Process(const Op& op);

  void CommitTxn(TxnId txn);
  void RestartTxn(TxnId txn);
  bool IsAborted(TxnId txn) const;
  bool IsCommitted(TxnId txn) const;

  const TimestampVector& Ts(TxnId txn) { return vectors_.Ts(txn); }

  /// Number of live versions of the item (including T0's initial one).
  size_t VersionCount(ItemId item);

  /// Drops dead versions and, behind the newest committed version, every
  /// older committed version with no live readers (storage reclamation in
  /// the spirit of Section III-D-6b).
  void PruneVersions();

  /// Independent audit: builds the multiversion serialization graph of the
  /// committed transactions (reads-from edges, writer version-order edges,
  /// reader-before-later-writer edges) and checks it is acyclic.
  bool AuditMvsgAcyclic();

  const MvMtkStats& stats() const { return stats_; }

  /// The transaction that caused the most recent rejection: for a write,
  /// the reader or writer whose already-fixed order made every insertion
  /// slot infeasible; kVirtualTxn when no single transaction is to blame
  /// (read-walk failure, stale/invalid submissions, or a phase-1 refusal
  /// on writer order alone).
  TxnId LastBlocker() const { return last_reject_.blocker; }

  /// Classified cause, operation and blocker of the most recent rejection.
  const RejectInfo& last_reject() const { return last_reject_; }

  /// Human-readable one-liner for the most recent rejection. MV-era
  /// kVersionConflict rejections with a concrete blocker also render the
  /// blocking transaction's current timestamp vector, e.g.
  ///   "W3[x7] rejected: version_conflict (...; blocker T2);
  ///    blocker vector <2,*,*>".
  /// (Non-const: rendering the vector goes through the auto-creating
  /// VectorTable accessor.)
  std::string ExplainLastReject();

  /// Number of operations handed to Process so far.
  uint64_t operations_processed() const { return ops_processed_; }

  /// Human-readable dump of an item's version chain.
  std::string DumpVersions(ItemId item);

 private:
  struct TxnState {
    uint32_t incarnation = 0;
    bool aborted = false;
    bool committed = false;
  };

  struct Reader {
    TxnId txn = 0;
    uint32_t incarnation = 0;
  };

  struct Version {
    TxnId writer = kVirtualTxn;
    uint32_t incarnation = 0;
    std::vector<Reader> readers;
  };

  struct ItemState {
    // Sorted by the writers' vector order, oldest first. Element 0 is the
    // virtual transaction's initial version.
    std::vector<Version> versions;
  };

  TxnState& State(TxnId txn);
  ItemState& Item(ItemId item);
  bool IsLiveTxn(TxnId txn, uint32_t incarnation);
  bool IsLiveVersion(const Version& v);

  MvMtkOptions options_;
  MvMtkStats stats_;
  RejectInfo last_reject_;
  uint64_t ops_processed_ = 0;
  VectorTable vectors_;
  std::vector<TxnState> txns_;
  std::vector<ItemState> items_;
};

}  // namespace mdts

#endif  // MDTS_MVCC_MV_SCHEDULER_H_
