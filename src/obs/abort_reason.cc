#include "obs/abort_reason.h"

namespace mdts {

const char* AbortReasonName(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kLexOrder:
      return "lex_order";
    case AbortReason::kEncodingExhausted:
      return "encoding_exhausted";
    case AbortReason::kStaleTxn:
      return "stale_txn";
    case AbortReason::kInvalidOp:
      return "invalid_op";
    case AbortReason::kDeadlockAvoidance:
      return "deadlock_avoidance";
    case AbortReason::kValidationFailure:
      return "validation_failure";
    case AbortReason::kLockTimeout:
      return "lock_timeout";
    case AbortReason::kLeaseExpired:
      return "lease_expired";
    case AbortReason::kDownSite:
      return "down_site";
    case AbortReason::kFaultInjected:
      return "fault_injected";
    case AbortReason::kRetryCapExhausted:
      return "retry_cap_exhausted";
    case AbortReason::kBatchThrottled:
      return "batch_throttled";
    case AbortReason::kVersionConflict:
      return "version_conflict";
    case AbortReason::kNumReasons:
      break;
  }
  return "?";
}

const char* AbortReasonDescription(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone:
      return "not rejected";
    case AbortReason::kLexOrder:
      return "the opposite serialization order is already fixed";
    case AbortReason::kEncodingExhausted:
      return "no room left to encode the dependency";
    case AbortReason::kStaleTxn:
      return "operation from a dead transaction incarnation";
    case AbortReason::kInvalidOp:
      return "malformed operation";
    case AbortReason::kDeadlockAvoidance:
      return "granting the lock would close a waits-for cycle";
    case AbortReason::kValidationFailure:
      return "a concurrent committer wrote an item in the read set";
    case AbortReason::kLockTimeout:
      return "lock request retries exhausted without an answer";
    case AbortReason::kLeaseExpired:
      return "a held lock's lease expired; mutual exclusion lost";
    case AbortReason::kDownSite:
      return "a required site is crashed or unreachable";
    case AbortReason::kFaultInjected:
      return "abort forced by the fault injector";
    case AbortReason::kRetryCapExhausted:
      return "attempt cap reached; the transaction gave up";
    case AbortReason::kBatchThrottled:
      return "throttled while a livelocked batch drains its champion";
    case AbortReason::kVersionConflict:
      return "no feasible version-chain slot for the write";
    case AbortReason::kNumReasons:
      break;
  }
  return "?";
}

std::string FormatReject(const std::string& op_name, AbortReason reason,
                         uint32_t blocker) {
  std::string out = op_name;
  out += " rejected: ";
  out += AbortReasonName(reason);
  out += " (";
  out += AbortReasonDescription(reason);
  if (blocker != 0) {
    out += "; blocker T";
    out += std::to_string(blocker);
  }
  out += ")";
  return out;
}

std::string AbortReasonCounts::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (size_t r = 0; r < kNumAbortReasons; ++r) {
    if (counts[r] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "\"";
    out += AbortReasonName(static_cast<AbortReason>(r));
    out += "\": ";
    out += std::to_string(counts[r]);
  }
  out += "}";
  return out;
}

}  // namespace mdts
