#include "obs/sampler.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace mdts {

namespace {

void AppendNum(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  *out += buf;
}

// Round-trip precision: window timestamps may differ only in the rebase
// epsilon, and consumers (and the tests) check strict monotonicity.
void AppendTime(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  *out += buf;
}

}  // namespace

HistogramSnapshot HistogramDelta(const HistogramSnapshot& cur,
                                 const HistogramSnapshot& prev) {
  HistogramSnapshot d;
  for (size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    d.buckets[b] = cur.buckets[b] - prev.buckets[b];
    d.count += d.buckets[b];
  }
  d.sum = cur.sum - prev.sum;
  d.min = 0;        // Unknowable from cumulative state.
  d.max = cur.max;  // Upper bound; Percentile() clamps against it.
  return d;
}

Sampler::Sampler(const SamplerOptions& options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  assert(options_.registry != nullptr);
  if (options_.capacity < 2) options_.capacity = 2;
}

Sampler::~Sampler() { Stop(); }

void Sampler::AddStarvationWatchdog(
    const StarvationWatchdogOptions& options) {
  std::lock_guard<std::mutex> g(mu_);
  watchdogs_.emplace_back(options, options_.registry);
}

void Sampler::AddTickHook(std::function<void(uint64_t, double)> hook) {
  std::lock_guard<std::mutex> g(mu_);
  tick_hooks_.push_back(std::move(hook));
}

double Sampler::SteadySeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void Sampler::TickOnce(double now_seconds) {
  std::lock_guard<std::mutex> g(mu_);
  TickLocked(now_seconds);
}

void Sampler::TickOnce() { TickOnce(SteadySeconds()); }

void Sampler::TickLocked(double raw_now) {
  // Strict ring monotonicity even when a driver restarts its clock
  // (successive simulation runs reusing one sampler): the first sample
  // that would step backwards rebases the offset so it lands just past
  // the previous one, and the SAME offset then applies to the rest of
  // that run - within-run spacing (and therefore window rates) stays
  // exact instead of every later sample collapsing onto a 1 ns window.
  double now = raw_now + time_offset_;
  if (ticked_ && now <= last_time_) {
    time_offset_ = last_time_ + 1e-9 - raw_now;
    now = raw_now + time_offset_;
  }
  last_time_ = now;
  ticked_ = true;
  ++seq_;
  // Snapshot before the watchdogs consume their windowed gauges, so this
  // sample still shows the window's consecutive-abort peak.
  Sample s;
  s.seq = seq_;
  s.time = now;
  s.snapshot = options_.registry->Snapshot();
  ring_.push_back(std::move(s));
  if (ring_.size() > options_.capacity) ring_.pop_front();
  for (StarvationWatchdog& w : watchdogs_) {
    w.Evaluate(seq_, now);
  }
  // Hooks run last: a hook reacting to this window (the admission
  // controller) sees the watchdogs' alert state for the same window.
  for (const auto& hook : tick_hooks_) {
    hook(seq_, now);
  }
}

void Sampler::Start() {
  if (running_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> g(stop_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] {
    const auto interval = std::chrono::milliseconds(options_.interval_ms);
    std::unique_lock<std::mutex> lk(stop_mu_);
    while (!stop_requested_) {
      // Wait first so Stop() during the initial interval exits promptly.
      if (stop_cv_.wait_for(lk, interval, [this] { return stop_requested_; }))
        break;
      lk.unlock();
      TickOnce();
      lk.lock();
    }
  });
}

void Sampler::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> g(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::vector<Sample> Sampler::Ring() const {
  std::lock_guard<std::mutex> g(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<WatchdogAlert> Sampler::alerts() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<WatchdogAlert> out;
  for (const StarvationWatchdog& w : watchdogs_) {
    out.insert(out.end(), w.alerts().begin(), w.alerts().end());
  }
  return out;
}

uint64_t Sampler::samples_taken() const {
  std::lock_guard<std::mutex> g(mu_);
  return seq_;
}

std::string Sampler::SeriesJson() const {
  std::lock_guard<std::mutex> g(mu_);
  std::string out = "{\"interval_ms\": ";
  AppendU64(&out, options_.interval_ms);
  out += ", \"samples_taken\": ";
  AppendU64(&out, seq_);
  out += ", \"windows\": [";
  for (size_t n = 1; n < ring_.size(); ++n) {
    const Sample& prev = ring_[n - 1];
    const Sample& cur = ring_[n];
    const double dt = cur.time - prev.time;
    if (n > 1) out += ",";
    out += "\n{\"seq\": ";
    AppendU64(&out, cur.seq);
    out += ", \"t\": ";
    AppendTime(&out, cur.time);
    out += ", \"dt\": ";
    AppendNum(&out, dt);
    // Counter rates: both snapshots are name-sorted, so one merge walk
    // pairs them up. A counter first seen this window rates from zero.
    out += ", \"rates\": {";
    bool first = true;
    size_t pi = 0;
    for (const auto& [name, v] : cur.snapshot.counters) {
      while (pi < prev.snapshot.counters.size() &&
             prev.snapshot.counters[pi].first < name) {
        ++pi;
      }
      const uint64_t before = pi < prev.snapshot.counters.size() &&
                                      prev.snapshot.counters[pi].first == name
                                  ? prev.snapshot.counters[pi].second
                                  : 0;
      if (v == before) continue;
      if (!first) out += ", ";
      first = false;
      out += "\"" + name + "\": ";
      AppendNum(&out, dt > 0
                          ? static_cast<double>(v - before) / dt
                          : static_cast<double>(v - before));
    }
    out += "}, \"gauges\": {";
    first = true;
    for (const auto& [name, v] : cur.snapshot.gauges) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + name + "\": " + std::to_string(v);
    }
    out += "}, \"histograms\": {";
    first = true;
    pi = 0;
    for (const auto& [name, h] : cur.snapshot.histograms) {
      while (pi < prev.snapshot.histograms.size() &&
             prev.snapshot.histograms[pi].first < name) {
        ++pi;
      }
      const bool matched = pi < prev.snapshot.histograms.size() &&
                           prev.snapshot.histograms[pi].first == name;
      const HistogramSnapshot d =
          matched ? HistogramDelta(h, prev.snapshot.histograms[pi].second)
                  : h;
      if (d.count == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "\"" + name + "\": {\"count\": ";
      AppendU64(&out, d.count);
      out += ", \"p50\": ";
      AppendU64(&out, d.Percentile(50));
      out += ", \"p99\": ";
      AppendU64(&out, d.Percentile(99));
      out += "}";
    }
    out += "}}";
  }
  out += "\n], \"alerts\": [";
  bool first = true;
  for (const StarvationWatchdog& w : watchdogs_) {
    for (const WatchdogAlert& a : w.alerts()) {
      if (!first) out += ",";
      first = false;
      out += "\n" + a.ToJson();
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace mdts
