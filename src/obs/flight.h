#ifndef MDTS_OBS_FLIGHT_H_
#define MDTS_OBS_FLIGHT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/timestamp_vector.h"
#include "core/types.h"
#include "obs/abort_reason.h"

namespace mdts {

/// Attributed slices of a transaction's lifecycle, indexed into
/// FlightRecord::phase_us and the "engine.phase.<name>_us" histograms the
/// engine publishes when a registry is attached:
///   admission   batch entry until the first shard-lock acquisition starts
///   lock        acquiring the sorted shard locksets (all rounds)
///   decide      the decision bodies (single-version, and MV writes)
///   mv_read     multiversion read-path version-chain walks
///   wal_append  building + appending the WAL commit record (sync excluded)
///   fsync       waiting for the fdatasync that covers the record
///   ack         the commit point (liveness store) after the log is durable
enum class TxnPhase : uint8_t {
  kAdmission = 0,
  kLock,
  kDecide,
  kMvRead,
  kWalAppend,
  kFsync,
  kAck,
  kNumPhases,
};

inline constexpr size_t kNumTxnPhases =
    static_cast<size_t>(TxnPhase::kNumPhases);

/// Stable snake_case identifier ("admission", "lock", ...).
const char* TxnPhaseName(TxnPhase phase);

/// One drained flight-recorder entry: the last moments of a commit or an
/// abort, with enough context to audit it offline (tools/flight_check.py).
struct FlightRecord {
  uint64_t seq = 0;      ///< Global record order (strictly increasing).
  uint64_t time_us = 0;  ///< Tracer::NowUs() at the record point.
  uint32_t ring = 0;     ///< Ring (shard) the record was captured on.
  TxnId txn = 0;
  bool commit = false;  ///< false = abort/reject record.
  /// True when the phase_us slices were measured for this transaction
  /// (phase attribution samples 1 in 2^phase_sample_shift commits).
  bool phases_sampled = false;
  AbortReason reason = AbortReason::kNone;  ///< Aborts only.
  TxnId blocker = 0;  ///< Transaction that fixed the conflicting order, or 0.
  bool has_op = false;
  Op op;  ///< The rejected operation (aborts with has_op).
  uint32_t shard_mask = 0;    ///< Shards touched (bit s = shard s, s < 32).
  uint32_t writes_total = 0;  ///< Full write-set size (>= writes.size()).
  uint32_t phase_us[kNumTxnPhases] = {};
  std::vector<ItemId> writes;  ///< First kMaxWrites written items.
  /// First kMaxVecElements elements of the timestamp vector at the record
  /// point (undefined slots hold kUndefinedElement); k is the true size.
  std::vector<TsElement> vec;
  size_t k = 0;

  /// {"seq": ..., "event": "commit"|"abort", "vec": [1, "*", ...], ...}.
  std::string ToJson() const;
};

/// One control-plane decision captured alongside the transaction records:
/// what an actuator (the admission controller) did and the state it left
/// behind. Kept in its own small ring so transaction totals and the
/// commit/abort reconciliation audits are untouched.
struct ControlEvent {
  uint64_t seq = 0;      ///< Shares the recorder's global sequence space.
  uint64_t time_us = 0;  ///< Caller's record-point clock.
  std::string action;    ///< "grow", "shrink", "emergency_shrink", ...
  uint32_t batch_size = 0;  ///< Advisory batch size after the action.
  uint32_t k = 0;           ///< Active protocol dimension after the action.

  /// {"seq": ..., "event": "control", "action": ..., ...}.
  std::string ToJson() const;
};

struct FlightRecorderOptions {
  /// Independent rings; writers pick one (the engine uses txn % num_shards)
  /// so concurrent recording never contends across rings. Rounded up to a
  /// power of two - ring selection on the hot path is a mask, never a
  /// division.
  size_t rings = 1;
  /// Records retained per ring (rounded up to a power of two).
  size_t capacity = 256;
  /// Timestamp vector size, carried into dumps for the offline audit.
  size_t k = 3;
};

/// Always-on lock-free flight recorder: per-ring bounded histories of the
/// last N commit/abort records, written with relaxed atomics (a record is
/// a handful of stores into a prefetchable slot, stamped with the coarse
/// monotonic clock - cheap enough to leave attached in production) and
/// drained to JSON on demand. Dump triggers in this repository: the StarvationWatchdog
/// on alert raise, the WAL crash hook before a planned _Exit, and the
/// HttpExporter's /flight.json endpoint.
///
/// Concurrency contract: recording is wait-free and never blocks or loses
/// newer records (a ring overwrites its oldest entry). Drain/ToJson are
/// best-effort under concurrent writers - a slot overwritten mid-copy is
/// detected by its sequence stamp and skipped - and exact once writers are
/// quiescent, which is the state at every dump trigger above.
class FlightRecorder {
 public:
  /// Vector elements captured per record (the TimestampVector inline
  /// capacity; every protocol configuration in the repo fits).
  static constexpr size_t kMaxVecElements = 8;
  /// Written items captured per record (writes_total keeps the full count).
  static constexpr size_t kMaxWrites = 4;

  /// Record-point clock for the hot paths: CLOCK_MONOTONIC_COARSE (a vDSO
  /// page read, ~5 ns, millisecond granularity - plenty for a crash-window
  /// audit trail and still monotonic) where available, CLOCK_MONOTONIC
  /// otherwise. A fine-grained Tracer::NowUs() read would double the cost
  /// of a record.
  static uint64_t CoarseNowUs();

  explicit FlightRecorder(const FlightRecorderOptions& options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records a commit. `phase_us` (kNumTxnPhases entries) may be null for
  /// unsampled commits; `time_us` is the caller's record-point clock.
  void RecordCommit(size_t ring, TxnId txn, const TimestampVector& vec,
                    uint32_t shard_mask, std::span<const ItemId> writes,
                    const uint32_t* phase_us, uint64_t time_us);

  /// As above, with an explicit full write-set size - for callers that
  /// track only the first kMaxWrites items (the engine's allocation-free
  /// commit path) but still know the true count.
  void RecordCommit(size_t ring, TxnId txn, const TimestampVector& vec,
                    uint32_t shard_mask, std::span<const ItemId> writes,
                    uint32_t writes_total, const uint32_t* phase_us,
                    uint64_t time_us);

  /// Records an abort/reject. `op` and `vec` may be null when unknown.
  void RecordAbort(size_t ring, TxnId txn, AbortReason reason, TxnId blocker,
                   const Op* op, uint32_t shard_mask,
                   const TimestampVector* vec, uint64_t time_us);

  /// Records a control-plane decision (admission-controller actuation).
  /// Mutex-guarded, not wait-free: decisions arrive at sampler cadence
  /// (tens of Hz), never on the transaction hot path. The ring keeps the
  /// last `capacity` events; ToJson() includes them under "control".
  void RecordControl(std::string action, uint32_t batch_size, uint32_t k,
                     uint64_t time_us);

  /// Snapshot of the retained control events, oldest first.
  std::vector<ControlEvent> ControlEvents() const;

  /// Prefetches (for write) the slot the ring's next record will land in.
  /// Call it on transaction-commit entry, a few hundred nanoseconds ahead
  /// of the record: slots cycle, so the target lines are always cold, and
  /// without the prefetch the miss lands inside the commit-point critical
  /// section. Best-effort - a racing writer may take the ticket first,
  /// which only wastes the hint. Not worth issuing on paths that rarely
  /// record (e.g. per batch for the minority that aborts): stores to a
  /// cold slot drain through the store buffer without stalling the core.
  void PrefetchNext(size_t ring) const {
    const Ring& r = rings_[ring & ring_mask_];
    const char* p = reinterpret_cast<const char*>(
        &r.slots[r.head.load(std::memory_order_relaxed) & mask_]);
    __builtin_prefetch(p, 1, 0);
    __builtin_prefetch(p + 64, 1, 0);
  }

  /// Snapshot of every currently retained record, sorted by seq.
  std::vector<FlightRecord> Drain() const;

  /// {"meta": {...}, "totals": {...}, "records": [...]}: the dump format
  /// tools/flight_check.py audits.
  std::string ToJson() const;

  /// Writes ToJson() to `path`; false (with a message on stderr) on error.
  bool DumpToFile(const std::string& path) const;

  /// Lifetime totals (not bounded by the ring capacity); the dump carries
  /// them so audits can reconcile the retained window against the run.
  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  uint64_t aborts() const;
  AbortReasonCounts abort_reasons() const;

  size_t rings() const { return ring_mask_ + 1; }
  size_t capacity() const { return mask_ + 1; }
  const FlightRecorderOptions& options() const { return options_; }

 private:
  // Payload word layout (all relaxed atomics; see Record()):
  //   w0 seq, w1 time_us,
  //   w2 txn | flags<<32 | reason<<40 | k_rec<<48 | nwrites_rec<<56,
  //   w3 blocker | op_item<<32, w4 shard_mask | writes_total<<32,
  //   then phases (two uint32 per word), writes (two per word), vector
  //   elements (bitcast int64). Flags: 1 commit, 2 has_op, 4 sampled,
  //   8 op-is-write.
  static constexpr size_t kHeaderWords = 5;
  static constexpr size_t kPhaseWords = (kNumTxnPhases + 1) / 2;
  static constexpr size_t kWriteWords = (kMaxWrites + 1) / 2;
  static constexpr size_t kPayloadWords =
      kHeaderWords + kPhaseWords + kWriteWords + kMaxVecElements;

  struct Slot {
    /// 0 = never written; ticket + 1 once the payload below is complete.
    /// Writers store 0 first (invalidate), payload, then the new stamp
    /// (release), so a drain that reads the same nonzero stamp on both
    /// sides of its copy holds a consistent record.
    std::atomic<uint64_t> stamp{0};
    std::atomic<uint64_t> w[kPayloadWords] = {};
  };

  struct alignas(64) Ring {
    std::atomic<uint64_t> head{0};  ///< Next ticket; slot = ticket & mask.
    std::unique_ptr<Slot[]> slots;
  };

  void Record(size_t ring, TxnId txn, bool commit, AbortReason reason,
              TxnId blocker, const Op* op, bool sampled, uint32_t shard_mask,
              uint32_t writes_total, std::span<const ItemId> writes,
              const uint32_t* phase_us, const TimestampVector* vec,
              uint64_t time_us);

  FlightRecorderOptions options_;
  uint64_t mask_;       ///< capacity - 1 (capacity is a power of two).
  uint64_t ring_mask_;  ///< ring count - 1 (also a power of two).
  std::unique_ptr<Ring[]> rings_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_by_reason_[kNumAbortReasons] = {};

  mutable std::mutex control_mu_;
  std::deque<ControlEvent> control_;  ///< Last `capacity` control events.
};

}  // namespace mdts

#endif  // MDTS_OBS_FLIGHT_H_
