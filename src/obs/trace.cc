#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "common/bench_json.h"

namespace mdts {

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // Leaked: emitters may outlive
  return *tracer;                        // static destruction order.
}

uint64_t Tracer::NowUs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

void Tracer::Enable(size_t events_per_thread) {
  {
    std::lock_guard<std::mutex> g(mu_);
    events_per_thread_ = events_per_thread < 16 ? 16 : events_per_thread;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

Tracer::Ring* Tracer::LocalRing() {
  thread_local uint64_t cached_epoch = ~uint64_t{0};
  thread_local Ring* cached = nullptr;
  const uint64_t e = epoch_.load(std::memory_order_acquire);
  if (cached == nullptr || cached_epoch != e) {
    std::lock_guard<std::mutex> g(mu_);
    rings_.emplace_back();
    Ring& r = rings_.back();  // Deque: address stable across registration.
    r.events.resize(events_per_thread_);
    r.default_tid = next_tid_++;
    cached = &r;
    cached_epoch = epoch_.load(std::memory_order_relaxed);
  }
  return cached;
}

void Tracer::Emit(const TraceEvent& event) {
  Ring* r = LocalRing();
  TraceEvent e = event;
  if (e.pid == 1 && e.tid == 0) e.tid = r->default_tid;
  r->events[r->count % r->events.size()] = e;
  ++r->count;
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> g(mu_);
  size_t total = 0;
  for (const Ring& r : rings_) {
    total += static_cast<size_t>(
        std::min<uint64_t>(r.count, r.events.size()));
  }
  return total;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> g(mu_);
  rings_.clear();
  next_tid_ = 1;
  epoch_.fetch_add(1, std::memory_order_release);
}

std::string Tracer::ToJson() const {
  // Collect the retained window of every ring, then bucket into lanes and
  // sort each lane by timestamp so every (pid, tid) lane is monotone - the
  // invariant the schema test checks and Perfetto's track builder expects.
  std::map<std::pair<uint32_t, uint32_t>, std::vector<TraceEvent>> lanes;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (const Ring& r : rings_) {
      const uint64_t n = std::min<uint64_t>(r.count, r.events.size());
      // Oldest retained event first: the ring wraps at count % size.
      const uint64_t start = r.count - n;
      for (uint64_t q = 0; q < n; ++q) {
        const TraceEvent& e = r.events[(start + q) % r.events.size()];
        lanes[{e.pid, e.tid}].push_back(e);
      }
    }
  }
  for (auto& [lane, events] : lanes) {
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.ts_us < b.ts_us;
                     });
  }

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  auto append = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  // Name the timeline groups so the viewer labels them.
  std::map<uint32_t, const char*> pids;
  for (const auto& [lane, events] : lanes) {
    (void)events;
    pids.emplace(lane.first, lane.first == 2 ? "mdts-sim" : "mdts");
  }
  for (const auto& [pid, name] : pids) {
    append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":" +
           JsonStr(name) + "}}");
  }
  char buf[64];
  for (const auto& [lane, events] : lanes) {
    for (const TraceEvent& e : events) {
      std::string line = "{\"name\":" + JsonStr(e.name) + ",\"ph\":\"";
      line += e.ph;
      line += "\",\"pid\":" + std::to_string(lane.first) +
              ",\"tid\":" + std::to_string(lane.second);
      std::snprintf(buf, sizeof buf, ",\"ts\":%" PRIu64, e.ts_us);
      line += buf;
      if (e.ph == 'X') {
        std::snprintf(buf, sizeof buf, ",\"dur\":%" PRIu64, e.dur_us);
        line += buf;
      }
      if (e.ph == 'i') line += ",\"s\":\"t\"";  // Thread-scoped instant.
      if (e.arg_name != nullptr) {
        std::snprintf(buf, sizeof buf, ":%" PRIu64 "}", e.arg);
        line += ",\"args\":{" + JsonStr(e.arg_name) + buf;
      }
      line += "}";
      append(line);
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Tracer::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace mdts
