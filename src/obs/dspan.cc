#include "obs/dspan.h"

#include <algorithm>
#include <bit>

namespace mdts {

const char* DistSegmentName(DistSegment segment) {
  switch (segment) {
    case DistSegment::kNetwork:
      return "network";
    case DistSegment::kLockWait:
      return "lock_wait";
    case DistSegment::kBackoff:
      return "backoff";
    case DistSegment::kSiteDownRetry:
      return "site_down_retry";
    case DistSegment::kProcessing:
      return "processing";
    case DistSegment::kNumSegments:
      break;
  }
  return "unknown";
}

std::string DistSpan::ToJson() const {
  std::string out = "{\"id\": " + std::to_string(id);
  out += ", \"parent\": " + std::to_string(parent);
  out += ", \"txn\": " + std::to_string(txn);
  out += ", \"incarnation\": " + std::to_string(incarnation);
  out += ", \"site\": " + std::to_string(site);
  out += std::string(", \"class\": \"") + DistSegmentName(segment) + "\"";
  out += std::string(", \"hop\": ") + (hop ? "true" : "false");
  out += std::string(", \"aborted\": ") + (aborted ? "true" : "false");
  out += ", \"start_us\": " + std::to_string(start_us);
  out += ", \"end_us\": " + std::to_string(end_us);
  out += ", \"defined\": " + std::to_string(defined) + "}";
  return out;
}

SpanRing::SpanRing(const SpanRingOptions& options)
    : mask_(std::bit_ceil(options.capacity < 2 ? size_t{2} : options.capacity) -
            1),
      ring_mask_(std::bit_ceil(options.rings < 1 ? size_t{1} : options.rings) -
                 1) {
  rings_ = std::make_unique<Ring[]>(ring_mask_ + 1);
  for (size_t r = 0; r <= ring_mask_; ++r) {
    rings_[r].slots = std::make_unique<Slot[]>(mask_ + 1);
  }
}

void SpanRing::Record(uint32_t site, const DistSpan& span) {
  // Single-writer (the simulation thread): plain load+store on the totals
  // and the ticket instead of locked RMWs - a concurrent Drain still reads
  // them atomically, and the LOCK prefixes would otherwise dominate the
  // record cost on this sub-100ns path.
  recorded_.store(recorded_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
  if (span.aborted) {
    aborted_.store(aborted_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  }
  if (span.hop) {
    hops_.store(hops_.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  }
  Ring& r = rings_[site & ring_mask_];
  const uint64_t ticket = r.head.load(std::memory_order_relaxed);
  r.head.store(ticket + 1, std::memory_order_relaxed);
  Slot& s = r.slots[ticket & mask_];
  // Invalidate first so a drain caught mid-copy sees the stamp move and
  // drops the slot instead of mixing two spans.
  s.stamp.store(0, std::memory_order_release);
  uint64_t flags = 0;
  if (span.hop) flags |= 1;
  if (span.aborted) flags |= 2;
  auto put = [&](size_t idx, uint64_t v) {
    s.w[idx].store(v, std::memory_order_relaxed);
  };
  put(0, span.id);
  put(1, span.parent);
  put(2, span.start_us);
  put(3, span.end_us);
  put(4, static_cast<uint64_t>(span.txn) |
             (static_cast<uint64_t>(span.site & 0xFFFFu) << 32) |
             (static_cast<uint64_t>(span.incarnation & 0xFFFFu) << 48));
  put(5, static_cast<uint64_t>(span.segment) | (flags << 8) |
             (static_cast<uint64_t>(span.defined) << 16));
  s.stamp.store(ticket + 1, std::memory_order_release);
  // The ring cycles through capacity * 64B of slots, so the next slot's
  // line is cold by the time it is written again; prefetching it now (with
  // write intent) overlaps the RFO with the simulation's work instead of
  // stalling the next Record (the FlightRecorder discipline).
  __builtin_prefetch(&r.slots[(ticket + 1) & mask_], 1, 0);
}

std::vector<DistSpan> SpanRing::Drain() const {
  std::vector<DistSpan> out;
  uint64_t words[kPayloadWords];
  for (size_t ri = 0; ri <= ring_mask_; ++ri) {
    const Ring& r = rings_[ri];
    for (uint64_t sl = 0; sl <= mask_; ++sl) {
      const Slot& s = r.slots[sl];
      const uint64_t s1 = s.stamp.load(std::memory_order_acquire);
      if (s1 == 0) continue;
      for (size_t w = 0; w < kPayloadWords; ++w) {
        words[w] = s.w[w].load(std::memory_order_relaxed);
      }
      if (s.stamp.load(std::memory_order_acquire) != s1) continue;  // Torn.
      DistSpan span;
      span.id = words[0];
      span.parent = words[1];
      span.start_us = words[2];
      span.end_us = words[3];
      span.txn = static_cast<TxnId>(words[4] & 0xFFFFFFFFu);
      span.site = static_cast<uint32_t>((words[4] >> 32) & 0xFFFFu);
      span.incarnation = static_cast<uint32_t>(words[4] >> 48);
      span.segment = static_cast<DistSegment>(words[5] & 0xFF);
      span.hop = (words[5] & 0x100) != 0;
      span.aborted = (words[5] & 0x200) != 0;
      span.defined = static_cast<uint8_t>((words[5] >> 16) & 0xFF);
      out.push_back(span);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DistSpan& a, const DistSpan& b) { return a.id < b.id; });
  return out;
}

std::string SpanRing::ToJson() const {
  const std::vector<DistSpan> spans = Drain();
  std::string out = "{\"meta\": {\"rings\": " + std::to_string(rings());
  out += ", \"capacity\": " + std::to_string(capacity()) + "}";
  out += ", \"totals\": {\"recorded\": " + std::to_string(recorded());
  out += ", \"aborted\": " + std::to_string(aborted());
  out += ", \"hops\": " + std::to_string(hops()) + "}";
  out += ", \"spans\": [";
  for (size_t q = 0; q < spans.size(); ++q) {
    if (q != 0) out += ", ";
    out += spans[q].ToJson();
  }
  out += "]}";
  return out;
}

std::string TxnPathRecord::ToJson() const {
  std::string out = "{\"txn\": " + std::to_string(txn);
  out += std::string(", \"committed\": ") + (committed ? "true" : "false");
  out += ", \"attempts\": " + std::to_string(attempts);
  out += ", \"root\": " + std::to_string(root);
  out += ", \"start_us\": " + std::to_string(start_us);
  out += ", \"end_us\": " + std::to_string(end_us);
  out += ", \"latency_us\": " + std::to_string(latency_us());
  out += ", \"critical_path_us\": {";
  for (size_t s = 0; s < kNumDistSegments; ++s) {
    if (s != 0) out += ", ";
    out += std::string("\"") + DistSegmentName(static_cast<DistSegment>(s)) +
           "\": " + std::to_string(seg_us[s]);
  }
  out += "}, \"k\": " + std::to_string(k);
  out += ", \"vec\": [";
  for (size_t m = 0; m < vec.size(); ++m) {
    if (m != 0) out += ", ";
    out += vec[m] == kUndefinedElement ? std::string("\"*\"")
                                       : std::to_string(vec[m]);
  }
  out += "], \"spans\": [";
  for (size_t q = 0; q < spans.size(); ++q) {
    if (q != 0) out += ", ";
    out += spans[q].ToJson();
  }
  out += "]}";
  return out;
}

PathCollector::PathCollector(size_t top_n) : top_n_(top_n < 1 ? 1 : top_n) {}

void PathCollector::Add(TxnPathRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++agg_.paths;
  if (record.committed) ++agg_.committed;
  agg_.total_us += record.latency_us();
  for (size_t s = 0; s < kNumDistSegments; ++s) {
    agg_.seg_us[s] += record.seg_us[s];
  }
  // Keep the slowest top_n, sorted descending; ties resolve to the earlier
  // arrival so retention stays deterministic for a deterministic run.
  const auto pos = std::upper_bound(
      slowest_.begin(), slowest_.end(), record,
      [](const TxnPathRecord& a, const TxnPathRecord& b) {
        return a.latency_us() > b.latency_us();
      });
  if (pos == slowest_.end() && slowest_.size() >= top_n_) return;
  slowest_.insert(pos, std::move(record));
  if (slowest_.size() > top_n_) slowest_.pop_back();
}

void PathCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  agg_ = Aggregates{};
  slowest_.clear();
}

PathCollector::Aggregates PathCollector::aggregates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return agg_;
}

std::vector<TxnPathRecord> PathCollector::Slowest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slowest_;
}

std::string PathCollector::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"meta\": {\"retained\": ";
  out += std::to_string(slowest_.size());
  out += ", \"top_n\": " + std::to_string(top_n_) + "}";
  out += ", \"aggregates\": {\"paths\": " + std::to_string(agg_.paths);
  out += ", \"committed\": " + std::to_string(agg_.committed);
  out += ", \"total_us\": " + std::to_string(agg_.total_us);
  out += ", \"segments\": {";
  for (size_t s = 0; s < kNumDistSegments; ++s) {
    if (s != 0) out += ", ";
    out += std::string("\"") + DistSegmentName(static_cast<DistSegment>(s)) +
           "\": " + std::to_string(agg_.seg_us[s]);
  }
  out += "}}, \"txns\": [";
  for (size_t q = 0; q < slowest_.size(); ++q) {
    if (q != 0) out += ", ";
    out += slowest_[q].ToJson();
  }
  out += "]}";
  return out;
}

}  // namespace mdts
