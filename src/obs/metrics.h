#ifndef MDTS_OBS_METRICS_H_
#define MDTS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mdts {

namespace obs_internal {
/// Dense per-thread index (0, 1, 2, ...) assigned on first use, process
/// wide. Counters and histograms stripe their slots by it so concurrent
/// writers from distinct threads touch distinct cache lines.
size_t ThreadSlot();
}  // namespace obs_internal

/// Monotonically increasing event counter, safe for concurrent writers.
///
/// Layout: kSlots cache-line-padded slots. Each of the first kSlots - 1
/// threads (by obs_internal::ThreadSlot()) owns one slot exclusively and
/// bumps it with a plain relaxed load + store - no lock prefix, so the hot
/// path costs about one L1 store. Threads beyond that share the last slot
/// through fetch_add (correct, merely slower). Value() sums all slots; it
/// is monotone per writer but, like any relaxed sharded counter, may
/// observe a mid-flight mix across writers.
class Counter {
 public:
  static constexpr size_t kSlots = 16;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    const size_t t = obs_internal::ThreadSlot();
    if (t < kSlots - 1) {
      std::atomic<uint64_t>& s = slots_[t].v;
      s.store(s.load(std::memory_order_relaxed) + n,
              std::memory_order_relaxed);
    } else {
      slots_[kSlots - 1].v.fetch_add(n, std::memory_order_relaxed);
    }
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  Slot slots_[kSlots];
};

/// Point-in-time level instrument (set/add semantics), safe for concurrent
/// writers. Unlike Counter it can move down, so it is a single atomic word
/// rather than striped slots: gauge updates are rare (per restart / per
/// sampling window), never per-operation hot-path events.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Raises the gauge to at least v (CAS max). Watchdog sources publish
  /// per-transaction consecutive-abort peaks this way; the sampler then
  /// consumes the window's peak with Exchange(0).
  void SetMax(int64_t v) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  /// Atomically reads and replaces the value (windowed-max consumption).
  int64_t Exchange(int64_t v) {
    return v_.exchange(v, std::memory_order_relaxed);
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Read-only copy of a histogram's state at one instant.
struct HistogramSnapshot {
  /// buckets[b] counts recorded values v with bit_width(v) == b, i.e.
  /// bucket 0 holds v == 0 and bucket b >= 1 holds 2^(b-1) <= v < 2^b:
  /// log-scale, one bucket per power of two.
  static constexpr size_t kBuckets = 65;
  std::array<uint64_t, kBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // Meaningful only when count > 0.
  uint64_t max = 0;

  /// Worst recorded value and its caller-supplied tag (a transaction id in
  /// the engine's phase histograms, linking the bucket to a trace span).
  /// Only populated by RecordWithExemplar; (0, 0) when never tagged.
  uint64_t exemplar_value = 0;
  uint64_t exemplar_tag = 0;

  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0;
  }
  /// Approximate percentile: the upper bound of the bucket where the
  /// cumulative count crosses p (exact to within the 2x bucket resolution).
  uint64_t Percentile(double p) const;
};

/// Log-scale (power-of-two buckets) histogram for latencies and sizes,
/// safe for concurrent writers; same exclusive-slot striping as Counter.
class Histogram {
 public:
  static constexpr size_t kSlots = 8;
  static constexpr size_t kBuckets = HistogramSnapshot::kBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    const size_t t = obs_internal::ThreadSlot();
    const size_t b = BucketOf(value);
    if (t < kSlots - 1) {
      Slot& s = slots_[t];
      RelaxedBump(s.buckets[b], 1);
      RelaxedBump(s.sum, value);
      const uint64_t mn = s.min.load(std::memory_order_relaxed);
      if (value < mn) s.min.store(value, std::memory_order_relaxed);
      const uint64_t mx = s.max.load(std::memory_order_relaxed);
      if (value > mx) s.max.store(value, std::memory_order_relaxed);
    } else {
      Slot& s = slots_[kSlots - 1];
      s.buckets[b].fetch_add(1, std::memory_order_relaxed);
      s.sum.fetch_add(value, std::memory_order_relaxed);
      AtomicMin(s.min, value);
      AtomicMax(s.max, value);
    }
  }

  /// Record plus exemplar maintenance: when `value` is at least the worst
  /// value seen so far, (value, tag) becomes the histogram's exemplar - so
  /// the snapshot's top bucket always points at a concrete culprit (the
  /// engine tags with the transaction id, which also names the matching
  /// trace span). The two exemplar stores are relaxed and unpaired; a racy
  /// mix of two same-magnitude exemplars is tolerated - the exemplar is a
  /// debugging pointer, not an accounting value.
  void RecordWithExemplar(uint64_t value, uint64_t tag) {
    Record(value);
    if (value >= ex_value_.load(std::memory_order_relaxed)) {
      ex_value_.store(value, std::memory_order_relaxed);
      ex_tag_.store(tag, std::memory_order_relaxed);
    }
  }

  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Slot {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
  };

  static size_t BucketOf(uint64_t v) {
    size_t b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;  // bit_width(v).
  }
  static void RelaxedBump(std::atomic<uint64_t>& a, uint64_t n) {
    a.store(a.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
  }
  static void AtomicMin(std::atomic<uint64_t>& a, uint64_t v);
  static void AtomicMax(std::atomic<uint64_t>& a, uint64_t v);

  Slot slots_[kSlots];
  std::atomic<uint64_t> ex_value_{0};
  std::atomic<uint64_t> ex_tag_{0};
};

/// Deterministic (name-sorted) copy of a registry's state.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// "name value" lines, histograms as "name count=... p50=... p99=...".
  std::string ToText() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;
  /// Writes ToJson() to `path`; false (with a message on stderr) on error.
  bool WriteJsonFile(const std::string& path) const;

  /// Counter value by exact name, 0 when absent.
  uint64_t CounterValue(const std::string& name) const;
  /// Sum of counters whose name starts with `prefix`.
  uint64_t CounterSum(const std::string& prefix) const;
  /// Gauge value by exact name, 0 when absent.
  int64_t GaugeValue(const std::string& name) const;
};

/// Named counter/histogram registry. Get* registers on first use and
/// returns a pointer that stays valid for the registry's lifetime (deque
/// storage), so hot paths resolve each metric once and then touch only the
/// lock-free instruments. Snapshot order is sorted by name, making
/// snapshots of equal states byte-identical.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Histogram> histogram_storage_;
};

/// The process-wide registry every component publishes into by default.
MetricsRegistry& GlobalMetrics();

}  // namespace mdts

#endif  // MDTS_OBS_METRICS_H_
