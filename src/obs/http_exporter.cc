#include "obs/http_exporter.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "obs/dspan.h"
#include "obs/flight.h"

namespace mdts {

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  *out += buf;
}

/// Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names are
/// dotted snake_case, so replacing every invalid byte with '_' under the
/// "mdts_" prefix yields a valid, readable, collision-free-in-practice
/// name ("engine.rejected.lex_order" -> "mdts_engine_rejected_lex_order").
std::string PromName(const std::string& name) {
  std::string out = "mdts_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void PromHeader(std::string* out, const std::string& pname,
                const std::string& orig, const char* type) {
  *out += "# HELP " + pname + " mdts " + type + " " + orig + "\n";
  *out += "# TYPE " + pname + " " + type + "\n";
}

}  // namespace

std::string HttpExporter::PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, v] : snapshot.counters) {
    const std::string pname = PromName(name);
    PromHeader(&out, pname, name, "counter");
    out += pname + " ";
    AppendU64(&out, v);
    out += "\n";
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string pname = PromName(name);
    PromHeader(&out, pname, name, "gauge");
    out += pname + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string pname = PromName(name);
    PromHeader(&out, pname, name, "histogram");
    size_t highest = 0;
    for (size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (h.buckets[b] != 0) highest = b;
    }
    uint64_t cumulative = 0;
    for (size_t b = 0; b <= highest && h.count > 0; ++b) {
      cumulative += h.buckets[b];
      // Log-scale bucket b holds values < 2^b, i.e. le = 2^b - 1 ("0" for
      // the zero bucket).
      const uint64_t le = b == 0 ? 0
                                 : (b >= 64 ? UINT64_MAX
                                            : (uint64_t{1} << b) - 1);
      out += pname + "_bucket{le=\"";
      AppendU64(&out, le);
      out += "\"} ";
      AppendU64(&out, cumulative);
      out += "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} ";
    AppendU64(&out, h.count);
    out += "\n" + pname + "_sum ";
    AppendU64(&out, h.sum);
    out += "\n" + pname + "_count ";
    AppendU64(&out, h.count);
    out += "\n";
  }
  return out;
}

HttpExporter::HttpExporter(const HttpExporterOptions& options)
    : options_(options) {}

HttpExporter::~HttpExporter() { Stop(); }

bool HttpExporter::Start() {
  if (running_.load()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::fprintf(stderr, "http_exporter: socket: %s\n", std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    std::fprintf(stderr, "http_exporter: cannot listen on 127.0.0.1:%u: %s\n",
                 options_.port, std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpExporter::Stop() {
  if (!running_.exchange(false)) return;
  // shutdown() wakes the blocking accept() (Linux: it returns EINVAL);
  // close() then releases the fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpExporter::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && running_.load()) continue;
      break;  // Stop() shut the socket down (or a fatal accept error).
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpExporter::HandleConnection(int fd) {
  // A silent client may never finish its request; bound the read so the
  // single-threaded accept loop cannot wedge.
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  char buf[4096];
  size_t used = 0;
  bool complete = false;
  while (used < sizeof buf - 1) {
    const ssize_t n = ::recv(fd, buf + used, sizeof buf - 1 - used, 0);
    if (n <= 0) return;  // Timeout, reset, or EOF before a full header.
    used += static_cast<size_t>(n);
    buf[used] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      complete = true;
      break;
    }
  }
  // Request line: METHOD SP PATH SP VERSION. A header block that overflows
  // the buffer, or a line with no parseable path, is answered with a 400
  // rather than a silent close - the scraper learns its request was the
  // problem.
  std::string path;
  bool bad = !complete;
  if (!bad) {
    const char* sp1 = std::strchr(buf, ' ');
    const char* sp2 = sp1 != nullptr ? std::strchr(sp1 + 1, ' ') : nullptr;
    if (sp2 == nullptr || sp2 == sp1 + 1) {
      bad = true;
    } else {
      path.assign(sp1 + 1, sp2);
      const size_t q = path.find('?');
      if (q != std::string::npos) path.resize(q);  // Queries are ignored.
    }
  }

  std::string body;
  const char* content_type = "text/plain; charset=utf-8";
  const char* status = "200 OK";
  if (bad) {
    status = "400 Bad Request";
    body = "bad request\n";
  } else if (path == "/metrics") {
    body = PrometheusText(options_.registry->Snapshot());
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/metrics.json") {
    body = options_.registry->Snapshot().ToJson();
    content_type = "application/json";
  } else if (path == "/series.json") {
    body = options_.sampler != nullptr
               ? options_.sampler->SeriesJson()
               : std::string(
                     "{\"interval_ms\": 0, \"samples_taken\": 0, "
                     "\"windows\": [], \"alerts\": []}\n");
    content_type = "application/json";
  } else if (path == "/phases.json") {
    // Per-phase latency attribution from the "engine.phase.*_us"
    // histograms, including the exemplar (worst value + the transaction
    // id tagging it) the plain /metrics expositions do not carry.
    const MetricsSnapshot snap = options_.registry->Snapshot();
    body = "{\"phases\": {";
    bool first = true;
    for (const auto& [name, h] : snap.histograms) {
      static constexpr char kPrefix[] = "engine.phase.";
      static constexpr size_t kPrefixLen = sizeof kPrefix - 1;
      if (name.compare(0, kPrefixLen, kPrefix) != 0) continue;
      std::string phase = name.substr(kPrefixLen);
      if (phase.size() > 3 && phase.compare(phase.size() - 3, 3, "_us") == 0) {
        phase.resize(phase.size() - 3);
      }
      body += first ? "" : ", ";
      first = false;
      body += "\"" + phase + "\": {\"count\": ";
      AppendU64(&body, h.count);
      body += ", \"sum_us\": ";
      AppendU64(&body, h.sum);
      body += ", \"p50_us\": ";
      AppendU64(&body, h.Percentile(50));
      body += ", \"p99_us\": ";
      AppendU64(&body, h.Percentile(99));
      body += ", \"max_us\": ";
      AppendU64(&body, h.max);
      body += ", \"exemplar\": {\"value_us\": ";
      AppendU64(&body, h.exemplar_value);
      body += ", \"txn\": ";
      AppendU64(&body, h.exemplar_tag);
      body += "}}";
    }
    body += "}}\n";
    content_type = "application/json";
  } else if (path == "/flight.json") {
    body = options_.flight != nullptr
               ? options_.flight->ToJson()
               : std::string("{\"meta\": {\"rings\": 0, \"capacity\": 0, "
                             "\"k\": 0}, \"totals\": {\"commits\": 0, "
                             "\"aborts\": 0, \"abort_reasons\": {}}, "
                             "\"records\": []}");
    content_type = "application/json";
  } else if (path == "/paths.json") {
    body = options_.paths != nullptr
               ? options_.paths->ToJson()
               : std::string("{\"meta\": {\"retained\": 0, \"top_n\": 0}, "
                             "\"aggregates\": {\"paths\": 0, \"committed\": "
                             "0, \"total_us\": 0, \"segments\": {}}, "
                             "\"txns\": []}");
    content_type = "application/json";
  } else if (path == "/healthz") {
    body = "ok\n";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }

  std::string resp = "HTTP/1.1 ";
  resp += status;
  resp += "\r\nContent-Type: ";
  resp += content_type;
  resp += "\r\nContent-Length: ";
  AppendU64(&resp, body.size());
  resp += "\r\nConnection: close\r\n\r\n";
  resp += body;
  size_t off = 0;
  while (off < resp.size()) {
    const ssize_t n = ::send(fd, resp.data() + off, resp.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

}  // namespace mdts
