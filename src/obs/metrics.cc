#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace mdts {

namespace obs_internal {

size_t ThreadSlot() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace obs_internal

void Histogram::AtomicMin(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::AtomicMax(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  uint64_t min = UINT64_MAX;
  for (const Slot& s : slots_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
    const uint64_t mn = s.min.load(std::memory_order_relaxed);
    if (mn < min) min = mn;
    const uint64_t mx = s.max.load(std::memory_order_relaxed);
    if (mx > out.max) out.max = mx;
  }
  for (uint64_t b : out.buckets) out.count += b;
  out.min = out.count ? min : 0;
  out.exemplar_value = ex_value_.load(std::memory_order_relaxed);
  out.exemplar_tag = ex_tag_.load(std::memory_order_relaxed);
  return out;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const double target = static_cast<double>(count) * p / 100.0;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      if (b == 0) return 0;
      const uint64_t upper = b >= 64 ? UINT64_MAX : (uint64_t{1} << b) - 1;
      return upper < max ? upper : max;
    }
  }
  return max;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  counter_storage_.emplace_back();
  Counter* c = &counter_storage_.back();
  counters_.emplace(name, c);
  return c;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  gauge_storage_.emplace_back();
  Gauge* p = &gauge_storage_.back();
  gauges_.emplace(name, p);
  return p;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  histogram_storage_.emplace_back();
  Histogram* h = &histogram_storage_.back();
  histograms_.emplace(name, h);
  return h;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> g(mu_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {  // std::map: sorted by name.
    out.counters.emplace_back(name, c->Value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g2] : gauges_) {
    out.gauges.emplace_back(name, g2->Value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, h->Snapshot());
  }
  return out;
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Leaked:
  return *registry;  // metrics must outlive any static user at exit.
}

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  *out += buf;
}

}  // namespace

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    out += name;
    out += " ";
    AppendU64(&out, v);
    out += "\n";
  }
  for (const auto& [name, v] : gauges) {
    out += name;
    out += " ";
    AppendI64(&out, v);
    out += "\n";
  }
  for (const auto& [name, h] : histograms) {
    out += name;
    out += " count=";
    AppendU64(&out, h.count);
    out += " sum=";
    AppendU64(&out, h.sum);
    out += " min=";
    AppendU64(&out, h.min);
    out += " max=";
    AppendU64(&out, h.max);
    out += " p50=";
    AppendU64(&out, h.Percentile(50));
    out += " p99=";
    AppendU64(&out, h.Percentile(99));
    out += "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    AppendU64(&out, v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    AppendI64(&out, v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": ";
    AppendU64(&out, h.count);
    out += ", \"sum\": ";
    AppendU64(&out, h.sum);
    out += ", \"min\": ";
    AppendU64(&out, h.min);
    out += ", \"max\": ";
    AppendU64(&out, h.max);
    out += ", \"p50\": ";
    AppendU64(&out, h.Percentile(50));
    out += ", \"p99\": ";
    AppendU64(&out, h.Percentile(99));
    out += ", \"buckets\": {";
    bool bfirst = true;
    for (size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      out += "\"";
      AppendU64(&out, b);
      out += "\": ";
      AppendU64(&out, h.buckets[b]);
    }
    out += "}}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool MetricsSnapshot::WriteJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

uint64_t MetricsSnapshot::CounterSum(const std::string& prefix) const {
  uint64_t total = 0;
  for (const auto& [n, v] : counters) {
    if (n.compare(0, prefix.size(), prefix) == 0) total += v;
  }
  return total;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

}  // namespace mdts
