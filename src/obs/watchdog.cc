#include "obs/watchdog.h"

#include <cinttypes>
#include <cstdio>

namespace mdts {

namespace {

void AppendNum(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  *out += buf;
}

}  // namespace

std::string WatchdogAlert::ToJson() const {
  std::string out = "{\"source\": \"" + source + "\"";
  out += ", \"threshold\": " + std::to_string(threshold);
  out += ", \"peak\": " + std::to_string(peak);
  out += ", \"first_seq\": " + std::to_string(first_seq);
  out += ", \"last_seq\": " + std::to_string(last_seq);
  out += ", \"first_t\": ";
  AppendNum(&out, first_time);
  out += ", \"last_t\": ";
  AppendNum(&out, last_time);
  out += ", \"active\": ";
  out += active ? "true" : "false";
  out += "}";
  return out;
}

StarvationWatchdog::StarvationWatchdog(
    const StarvationWatchdogOptions& options, MetricsRegistry* registry)
    : options_(options),
      source_(registry->GetGauge(options.source_gauge)),
      alert_gauge_(registry->GetGauge("obs.starvation_alert." +
                                      options.source_gauge)),
      raises_(registry->GetCounter("obs.starvation_alerts." +
                                   options.source_gauge)) {}

void StarvationWatchdog::Evaluate(uint64_t seq, double now) {
  // Consume-and-reset: the gauge accumulates the peak via SetMax between
  // windows. A SetMax landing between a snapshot and this exchange can be
  // lost for one window; starvation is by definition sustained, so a
  // one-window blip never matters.
  const int64_t peak = source_->Exchange(0);
  if (peak > options_.threshold) {
    if (streak_ == 0) {
      streak_first_seq_ = seq;
      streak_first_time_ = now;
      streak_peak_ = 0;
    }
    ++streak_;
    if (peak > streak_peak_) streak_peak_ = peak;
    if (streak_ == options_.min_windows) {
      // Raise: the excess has persisted for more than one window.
      alerts_.push_back(WatchdogAlert{options_.source_gauge,
                                      options_.threshold, streak_peak_,
                                      streak_first_seq_, seq,
                                      streak_first_time_, now, true});
      alert_gauge_->Set(1);
      raises_->Add(1);
      if (options_.on_alert) options_.on_alert(alerts_.back());
    } else if (streak_ > options_.min_windows) {
      WatchdogAlert& a = alerts_.back();
      a.peak = streak_peak_;
      a.last_seq = seq;
      a.last_time = now;
    }
    return;
  }
  if (streak_ >= options_.min_windows) {
    alerts_.back().active = false;
    alert_gauge_->Set(0);
  }
  streak_ = 0;
}

}  // namespace mdts
