#ifndef MDTS_OBS_TRACE_H_
#define MDTS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

/// Compile-time gate for the event tracer. The build defines MDTS_TRACE=1
/// by default (CMake option MDTS_TRACE); with it off every MDTS_TRACE_*
/// macro compiles to nothing. With it on, tracing still costs nothing
/// until Tracer::Enable(): each macro is one relaxed atomic load plus a
/// predictable branch.
#if defined(MDTS_TRACE) && MDTS_TRACE
#define MDTS_TRACE_COMPILED 1
#else
#define MDTS_TRACE_COMPILED 0
#endif

namespace mdts {

/// One trace event in (a subset of) the Chrome trace_event model.
/// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
struct TraceEvent {
  const char* name = "";      // Static/interned string; never freed.
  char ph = 'i';              // 'X' complete, 'i' instant, 'B'/'E' pair.
  uint32_t pid = 1;           // Timeline group (1 = real time, 2 = sim).
  uint32_t tid = 0;           // Lane within the group.
  uint64_t ts_us = 0;         // Microseconds (steady clock or sim time).
  uint64_t dur_us = 0;        // 'X' only.
  const char* arg_name = nullptr;  // Optional single numeric argument.
  uint64_t arg = 0;
};

/// Process-wide ring-buffer event tracer with Chrome trace_event JSON
/// export (load the file in chrome://tracing or https://ui.perfetto.dev).
///
/// Each emitting thread owns a private ring buffer (registered on first
/// emit), so concurrent Emit calls never contend; when a ring wraps, the
/// oldest events of that thread are overwritten. Exporting (ToJson /
/// WriteFile) and Reset require emitters to be quiescent: stop worker
/// threads (or Disable() and finish in-flight operations) first.
///
/// Real-time lanes (pid 1) default tid to the emitting thread; simulated
/// timelines (the DMT event loop) pass pid 2 and an explicit tid per site.
class Tracer {
 public:
  static Tracer& Get();

  /// Turns event capture on. Each emitting thread gets a ring of
  /// `events_per_thread` slots (~56 bytes each).
  void Enable(size_t events_per_thread = 1 << 16);
  void Disable();

  static bool Enabled() {
    return Get().enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one event to the calling thread's ring. Caller must have
  /// checked Enabled() (the MDTS_TRACE_* macros do).
  void Emit(const TraceEvent& event);

  /// Microseconds on the steady clock since process start.
  static uint64_t NowUs();

  /// All captured events as Chrome trace JSON, each lane (pid, tid) sorted
  /// by timestamp. Requires emitter quiescence.
  std::string ToJson() const;

  /// Writes ToJson() to `path`; false (with a message on stderr) on error.
  bool WriteFile(const std::string& path) const;

  /// Drops every captured event and buffer. Requires emitter quiescence;
  /// threads re-register on their next emit.
  void Reset();

  /// Events currently retained across all rings (post-wrap).
  size_t event_count() const;

 private:
  struct Ring {
    std::vector<TraceEvent> events;  // Fixed size once allocated.
    uint64_t count = 0;              // Total emitted; index = count % size.
    uint32_t default_tid = 0;
  };

  Ring* LocalRing();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> epoch_{0};  // Bumped by Reset: invalidates caches.
  mutable std::mutex mu_;
  std::deque<Ring> rings_;
  size_t events_per_thread_ = 1 << 16;
  uint32_t next_tid_ = 1;
};

/// RAII 'X' (complete) event over the enclosing scope, real-time lane.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), armed_(Tracer::Enabled()) {
    if (armed_) start_ = Tracer::NowUs();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (armed_ && Tracer::Enabled()) {
      TraceEvent e;
      e.name = name_;
      e.ph = 'X';
      e.ts_us = start_;
      e.dur_us = Tracer::NowUs() - start_;
      Tracer::Get().Emit(e);
    }
  }

 private:
  const char* name_;
  bool armed_;
  uint64_t start_ = 0;
};

}  // namespace mdts

#if MDTS_TRACE_COMPILED

/// Scoped 'X' event on the calling thread's real-time lane.
#define MDTS_TRACE_SPAN(name) ::mdts::TraceSpan mdts_trace_span_(name)

/// Instant event on the calling thread's real-time lane.
#define MDTS_TRACE_INSTANT(name_str)                      \
  do {                                                    \
    if (::mdts::Tracer::Enabled()) {                      \
      ::mdts::TraceEvent mdts_te_;                        \
      mdts_te_.name = (name_str);                         \
      mdts_te_.ts_us = ::mdts::Tracer::NowUs();           \
      ::mdts::Tracer::Get().Emit(mdts_te_);               \
    }                                                     \
  } while (0)

/// Instant event with one numeric argument, real-time lane.
#define MDTS_TRACE_INSTANT_ARG(name_str, arg_name_str, arg_v) \
  do {                                                        \
    if (::mdts::Tracer::Enabled()) {                          \
      ::mdts::TraceEvent mdts_te_;                            \
      mdts_te_.name = (name_str);                             \
      mdts_te_.ts_us = ::mdts::Tracer::NowUs();               \
      mdts_te_.arg_name = (arg_name_str);                     \
      mdts_te_.arg = (arg_v);                                 \
      ::mdts::Tracer::Get().Emit(mdts_te_);                   \
    }                                                         \
  } while (0)

/// Fully explicit event (simulated timelines: pid 2, tid = site,
/// ts = simulated microseconds). `ph_c` is one of 'i', 'B', 'E', 'X'.
#define MDTS_TRACE_AT(name_str, ph_c, pid_v, tid_v, ts_v)  \
  do {                                                     \
    if (::mdts::Tracer::Enabled()) {                       \
      ::mdts::TraceEvent mdts_te_;                         \
      mdts_te_.name = (name_str);                          \
      mdts_te_.ph = (ph_c);                                \
      mdts_te_.pid = (pid_v);                              \
      mdts_te_.tid = (tid_v);                              \
      mdts_te_.ts_us = (ts_v);                             \
      ::mdts::Tracer::Get().Emit(mdts_te_);                \
    }                                                      \
  } while (0)

#define MDTS_TRACE_AT_ARG(name_str, ph_c, pid_v, tid_v, ts_v, arg_name_str, \
                          arg_v)                                            \
  do {                                                                      \
    if (::mdts::Tracer::Enabled()) {                                        \
      ::mdts::TraceEvent mdts_te_;                                          \
      mdts_te_.name = (name_str);                                           \
      mdts_te_.ph = (ph_c);                                                 \
      mdts_te_.pid = (pid_v);                                               \
      mdts_te_.tid = (tid_v);                                               \
      mdts_te_.ts_us = (ts_v);                                              \
      mdts_te_.arg_name = (arg_name_str);                                   \
      mdts_te_.arg = (arg_v);                                               \
      ::mdts::Tracer::Get().Emit(mdts_te_);                                 \
    }                                                                       \
  } while (0)

#else  // !MDTS_TRACE_COMPILED

#define MDTS_TRACE_SPAN(name) \
  do {                        \
  } while (0)
#define MDTS_TRACE_INSTANT(name_str) \
  do {                               \
  } while (0)
#define MDTS_TRACE_INSTANT_ARG(name_str, arg_name_str, arg_v) \
  do {                                                        \
  } while (0)
#define MDTS_TRACE_AT(name_str, ph_c, pid_v, tid_v, ts_v) \
  do {                                                    \
  } while (0)
#define MDTS_TRACE_AT_ARG(name_str, ph_c, pid_v, tid_v, ts_v, arg_name_str, \
                          arg_v)                                            \
  do {                                                                      \
  } while (0)

#endif  // MDTS_TRACE_COMPILED

#endif  // MDTS_OBS_TRACE_H_
