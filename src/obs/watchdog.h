#ifndef MDTS_OBS_WATCHDOG_H_
#define MDTS_OBS_WATCHDOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace mdts {

/// One raised starvation alert: a source gauge stayed above the threshold
/// for at least min_windows consecutive sampling windows. `active` flips
/// false once a later window drops back to the threshold or below; a new
/// sustained excess then opens a fresh alert record.
struct WatchdogAlert {
  std::string source;     // Gauge that tripped.
  int64_t threshold = 0;  // Configured bar at raise time.
  int64_t peak = 0;       // Largest windowed value while raised.
  uint64_t first_seq = 0;  // Sample seq of the first window of the streak.
  uint64_t last_seq = 0;   // Most recent window still above the bar.
  double first_time = 0.0;
  double last_time = 0.0;
  bool active = true;

  /// {"source": ..., "threshold": ..., "peak": ..., ...}.
  std::string ToJson() const;
};

struct StarvationWatchdogOptions {
  /// Gauge carrying the windowed per-transaction consecutive-abort peak
  /// ("engine.max_consecutive_aborts" / "dmt.max_consecutive_aborts"; the
  /// engines publish via Gauge::SetMax, the watchdog consumes-and-resets
  /// via Gauge::Exchange(0) every window).
  std::string source_gauge;

  /// A window whose peak exceeds this raises the streak. The paper's
  /// Section III-D-4 starvation fix bounds repeated restarts; sustained
  /// peaks above a small threshold are the live signal that the fix (or a
  /// stronger backoff) is needed.
  int64_t threshold = 8;

  /// Consecutive windows above the threshold before the alert raises
  /// ("more than one sampling window": >= 2 filters one-window blips).
  size_t min_windows = 2;

  /// Invoked at each raise (once per alert, not per sustaining window),
  /// from the Evaluate call that raised - the flight-recorder auto-dump
  /// hook. Runs on the sampler's tick thread.
  std::function<void(const WatchdogAlert&)> on_alert;
};

/// Consecutive-abort starvation detector, driven once per sampling window
/// by Sampler::TickOnce (never concurrently). While an alert is raised the
/// gauge "obs.starvation_alert.<source>" reads 1 and each raise bumps the
/// counter "obs.starvation_alerts.<source>", so both the Prometheus and the
/// JSON exposition carry the alert without consulting `alerts()`.
class StarvationWatchdog {
 public:
  StarvationWatchdog(const StarvationWatchdogOptions& options,
                     MetricsRegistry* registry);

  /// Consumes the source gauge's windowed peak (Exchange(0)) and advances
  /// the streak / alert state. `seq` and `now` identify the window.
  void Evaluate(uint64_t seq, double now);

  const StarvationWatchdogOptions& options() const { return options_; }
  const std::vector<WatchdogAlert>& alerts() const { return alerts_; }
  bool alert_active() const {
    return !alerts_.empty() && alerts_.back().active;
  }

 private:
  StarvationWatchdogOptions options_;
  Gauge* source_;
  Gauge* alert_gauge_;
  Counter* raises_;
  size_t streak_ = 0;
  uint64_t streak_first_seq_ = 0;
  double streak_first_time_ = 0.0;
  int64_t streak_peak_ = 0;
  std::vector<WatchdogAlert> alerts_;
};

}  // namespace mdts

#endif  // MDTS_OBS_WATCHDOG_H_
