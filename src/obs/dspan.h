#ifndef MDTS_OBS_DSPAN_H_
#define MDTS_OBS_DSPAN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/timestamp_vector.h"
#include "core/types.h"

namespace mdts {

/// Segment classes of a distributed transaction's timeline in the DMT(k)
/// simulation. At any simulated instant a transaction is in exactly ONE
/// class, so the classes partition [first_start, finish] and the
/// per-class sums reconcile exactly with the end-to-end latency (the
/// invariant tools/critical_path.py re-checks offline):
///   network          a lock request or grant is in flight (the context
///                    is blocked on the wire, including retry re-sends)
///   lock_wait        queued behind another holder at an object's home site
///   backoff          restart backoff after a protocol abort (lex order,
///                    encoding exhaustion, timeout, lease loss)
///   site_down_retry  restart backoff after an abort caused by a crashed
///                    or down site (the crash-induced slice of retries)
///   processing       everything local: issue, decision, think time
enum class DistSegment : uint8_t {
  kNetwork = 0,
  kLockWait,
  kBackoff,
  kSiteDownRetry,
  kProcessing,
  kNumSegments,
};

inline constexpr size_t kNumDistSegments =
    static_cast<size_t>(DistSegment::kNumSegments);

/// Stable snake_case identifier ("network", "lock_wait", ...).
const char* DistSegmentName(DistSegment segment);

/// One closed span of the distributed trace. Two shapes share the struct:
/// segment spans (hop = false) are children of the transaction's root and
/// tile its timeline; message-hop spans (hop = true) are children of the
/// segment that was open at SEND time and run from the send to the
/// arrival's processing - so a parent always covers its child, and a
/// send always happens-before its receive.
struct DistSpan {
  uint64_t id = 0;      ///< Unique within a run, allocated in open order.
  uint64_t parent = 0;  ///< Root span id (segments) or segment id (hops).
  TxnId txn = 0;
  uint32_t incarnation = 0;  ///< Incarnation the span belongs to.
  uint32_t site = 0;         ///< Where the time was spent (hops: receiver).
  DistSegment segment = DistSegment::kProcessing;
  bool hop = false;
  bool aborted = false;  ///< Closed by an abort (crash, lease, timeout...).
  uint64_t start_us = 0;
  uint64_t end_us = 0;
  /// Defined positions of the transaction's MT(k) vector - at send time
  /// for hops (the TraceContext snapshot), at close time for segments.
  /// Within one incarnation definedness only grows, which is what the
  /// offline Definition-6 order audit checks over a transaction's hops.
  uint8_t defined = 0;

  /// {"id": ..., "class": "network", "hop": true, ...}.
  std::string ToJson() const;
};

struct SpanRingOptions {
  /// Independent rings; the DMT(k) simulation records each span into the
  /// ring of the site it was attributed to (ring = site % rings). Rounded
  /// up to a power of two.
  size_t rings = 1;
  /// Spans retained per ring (rounded up to a power of two).
  size_t capacity = 256;
};

/// Per-site ring of the last N closed distributed spans, modeled on
/// FlightRecorder: fixed-size seqlock slots written with relaxed stores
/// between an invalidate (stamp 0) and a release stamp, so recording never
/// blocks and a concurrent drain (the exporter scraping mid-run) detects
/// and skips torn slots. Exact once the writer is quiescent - the state at
/// every end-of-run dump. Record assumes a SINGLE writer (the
/// single-threaded simulation): tickets and lifetime totals use plain
/// load+store instead of locked RMWs, which concurrent drains read safely
/// but concurrent writers would race on.
class SpanRing {
 public:
  explicit SpanRing(const SpanRingOptions& options);

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  /// Records one closed span into `site`'s ring (site is masked).
  void Record(uint32_t site, const DistSpan& span);

  /// Snapshot of every currently retained span, sorted by id (= open
  /// order); best-effort under concurrent writers.
  std::vector<DistSpan> Drain() const;

  /// {"meta": {...}, "totals": {...}, "spans": [...]}.
  std::string ToJson() const;

  /// Lifetime totals (not bounded by ring capacity).
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t aborted() const { return aborted_.load(std::memory_order_relaxed); }
  uint64_t hops() const { return hops_.load(std::memory_order_relaxed); }

  size_t rings() const { return ring_mask_ + 1; }
  size_t capacity() const { return mask_ + 1; }

 private:
  // Payload word layout (all relaxed atomics):
  //   w0 id, w1 parent, w2 start_us, w3 end_us,
  //   w4 txn | site<<32 | incarnation<<48,
  //   w5 segment | flags<<8 | defined<<16 (flags: 1 hop, 2 aborted).
  static constexpr size_t kPayloadWords = 6;

  struct Slot {
    /// 0 = never written / being rewritten; ticket + 1 once complete.
    std::atomic<uint64_t> stamp{0};
    std::atomic<uint64_t> w[kPayloadWords] = {};
  };

  struct alignas(64) Ring {
    std::atomic<uint64_t> head{0};  ///< Next ticket; slot = ticket & mask.
    std::unique_ptr<Slot[]> slots;
  };

  uint64_t mask_;       ///< capacity - 1 (power of two).
  uint64_t ring_mask_;  ///< ring count - 1 (power of two).
  std::unique_ptr<Ring[]> rings_;
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<uint64_t> hops_{0};
};

/// One finished transaction's assembled span DAG plus its critical path.
/// Because the segment classes partition the transaction's timeline, the
/// critical path IS the per-class breakdown: seg_us sums to exactly
/// end_us - start_us.
struct TxnPathRecord {
  TxnId txn = 0;
  bool committed = false;  ///< false = gave up after max_attempts.
  uint32_t attempts = 0;   ///< Incarnations consumed (1 = first try).
  uint64_t root = 0;       ///< Root span id; segments' parent.
  uint64_t start_us = 0;   ///< First start (first incarnation's issue).
  uint64_t end_us = 0;     ///< Commit or give-up instant.
  uint64_t seg_us[kNumDistSegments] = {};  ///< Critical-path breakdown.
  std::vector<DistSpan> spans;  ///< All closed spans, open order.
  /// First elements of the final timestamp vector (undefined slots hold
  /// kUndefinedElement); k is the configured size.
  std::vector<TsElement> vec;
  size_t k = 0;

  uint64_t latency_us() const { return end_us - start_us; }

  /// {"txn": ..., "critical_path_us": {...}, "spans": [...], ...}.
  std::string ToJson() const;
};

/// Bounded retention of finished transactions' critical paths: lifetime
/// per-segment aggregates over EVERY extracted path, plus the top-N
/// slowest transactions' full span DAGs (the ones worth rendering). The
/// mutex makes Add/ToJson safe against the HTTP exporter scraping
/// /paths.json mid-run; the simulation adds one record per finished
/// transaction, so the lock is never contended on a hot path.
class PathCollector {
 public:
  struct Aggregates {
    uint64_t paths = 0;      ///< Records added since the last Clear().
    uint64_t committed = 0;  ///< Of which committed (rest gave up).
    uint64_t total_us = 0;   ///< Sum of end-to-end latencies.
    uint64_t seg_us[kNumDistSegments] = {};
  };

  explicit PathCollector(size_t top_n = 16);

  PathCollector(const PathCollector&) = delete;
  PathCollector& operator=(const PathCollector&) = delete;

  void Add(TxnPathRecord record);

  /// Drops retained paths and resets the aggregates (fault_sweep calls it
  /// between cells so each dump covers exactly one cell).
  void Clear();

  Aggregates aggregates() const;

  /// Retained paths, slowest first.
  std::vector<TxnPathRecord> Slowest() const;

  /// {"meta": {...}, "aggregates": {...}, "txns": [...]}: the /paths.json
  /// body and the per-cell dump tools/critical_path.py audits.
  std::string ToJson() const;

  size_t top_n() const { return top_n_; }

 private:
  const size_t top_n_;
  mutable std::mutex mu_;
  Aggregates agg_;
  std::vector<TxnPathRecord> slowest_;  ///< Sorted by latency, descending.
};

}  // namespace mdts

#endif  // MDTS_OBS_DSPAN_H_
