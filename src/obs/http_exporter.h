#ifndef MDTS_OBS_HTTP_EXPORTER_H_
#define MDTS_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/sampler.h"

namespace mdts {

class FlightRecorder;  // src/obs/flight.h
class PathCollector;   // src/obs/dspan.h

struct HttpExporterOptions {
  /// Registry served by /metrics and /metrics.json. Required; must outlive
  /// the exporter.
  MetricsRegistry* registry = nullptr;

  /// Sampler served by /series.json; null makes that endpoint answer an
  /// empty series. Must outlive the exporter when set.
  Sampler* sampler = nullptr;

  /// Flight recorder served by /flight.json; null makes that endpoint
  /// answer an empty dump. Must outlive the exporter when set.
  const FlightRecorder* flight = nullptr;

  /// Path collector served by /paths.json (distributed critical paths);
  /// null makes that endpoint answer an empty dump. Must outlive the
  /// exporter when set.
  const PathCollector* paths = nullptr;

  /// TCP port on 127.0.0.1. 0 binds an ephemeral port; read it back with
  /// port() after Start().
  uint16_t port = 0;
};

/// Minimal dependency-free HTTP/1.1 exporter: one background thread in a
/// blocking accept loop on localhost, one request per connection.
///
/// Endpoints:
///   /metrics       Prometheus text exposition format 0.0.4
///   /metrics.json  MetricsSnapshot::ToJson()
///   /series.json   Sampler::SeriesJson() (windowed rates + alerts)
///   /phases.json   "engine.phase.*" histograms with exemplars (per-phase
///                  latency attribution: count/p50/p99/max plus the worst
///                  value's transaction id)
///   /flight.json   FlightRecorder::ToJson() (last-N commit/abort records)
///   /paths.json    PathCollector::ToJson() (distributed critical-path
///                  aggregates + the top-N slowest transactions' span DAGs)
///   /healthz       200 "ok"
///
/// Malformed requests (no parseable "METHOD SP PATH SP" request line, or a
/// header block exceeding the 4 KiB read buffer) get a 400; unknown paths
/// get a 404 - a misbehaving scraper sees an answer, not a silent close.
///
/// Scrape-volume traffic only (a Prometheus pull every few seconds, one
/// mdtop poller): requests are served sequentially and each response is a
/// fresh snapshot. Localhost-only by construction - the socket binds
/// 127.0.0.1, never INADDR_ANY.
class HttpExporter {
 public:
  explicit HttpExporter(const HttpExporterOptions& options);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds, listens and spawns the accept thread. False (with a message on
  /// stderr) when the port cannot be bound.
  bool Start();

  /// Closes the listening socket and joins the thread (idempotent; the
  /// destructor calls it). In-flight requests finish first.
  void Stop();

  /// The bound port (resolves port 0 after a successful Start()).
  uint16_t port() const { return port_; }

  /// Prometheus text exposition of a snapshot: HELP/TYPE per metric,
  /// counters and gauges as single samples, histograms as cumulative
  /// le-bucket series plus _sum/_count. Metric names are sanitized to the
  /// Prometheus grammar ([a-zA-Z_:][a-zA-Z0-9_:]*) under an "mdts_"
  /// prefix; the original dotted name is kept in the HELP line.
  static std::string PrometheusText(const MetricsSnapshot& snapshot);

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  HttpExporterOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace mdts

#endif  // MDTS_OBS_HTTP_EXPORTER_H_
