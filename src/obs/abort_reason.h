#ifndef MDTS_OBS_ABORT_REASON_H_
#define MDTS_OBS_ABORT_REASON_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace mdts {

/// Why an operation was rejected (or a transaction aborted), across every
/// protocol layer in the repository. The paper's central claim is about
/// *which* conflicts a protocol avoids rejecting (Fig. 4's class
/// separations), so the reject cause is the natural observability
/// primitive: every kReject / kAborted / abort-and-retry path must carry
/// one of these instead of a bare bool.
///
/// The values are shared across protocols so cross-protocol breakdowns
/// line up: TO(1)'s "timestamp too old" and MT(k)'s "opposite vector order
/// already fixed" are both kLexOrder; MT(k)'s exhausted-vector case and
/// the interval scheduler's fragmentation are both kEncodingExhausted.
enum class AbortReason : uint8_t {
  kNone = 0,           // Not rejected (or cause unknown - should not appear).
  kLexOrder,           // The opposite (lexicographic/scalar) order is
                       // already fixed: MT(k) Compare == kGreater, TO(1)
                       // timestamp too old, interval order conflict.
  kEncodingExhausted,  // No room left to encode the dependency: identical
                       // fully-defined vectors (undefined-element conflict),
                       // interval fragmentation below min_split_width.
  kStaleTxn,           // Operation from an already aborted / committed /
                       // superseded transaction incarnation (defensive).
  kInvalidOp,          // Malformed submission, e.g. the virtual T0 issuing
                       // an operation.
  kDeadlockAvoidance,  // 2PL: granting would close a waits-for cycle; the
                       // requester is the victim.
  kValidationFailure,  // OCC backward validation: a concurrent committer
                       // wrote an item in the validator's read set.
  kLockTimeout,        // DMT(k): a lock request exhausted max_lock_retries
                       // re-sends without an answer.
  kLeaseExpired,       // DMT(k): a held lock's lease expired (crashed or
                       // wedged holder); mutual exclusion was lost.
  kDownSite,           // DMT(k): the coordinating or home site is crashed.
  kFaultInjected,      // Abort directly forced by the fault injector.
  kRetryCapExhausted,  // Starvation guard: the transaction hit its attempt
                       // cap and gave up.
  kBatchThrottled,     // Engine livelock guardrail: the batch is in
                       // serialized-admission fallback and this operation's
                       // transaction is not the elected champion.
  kVersionConflict,    // Multiversion write-write conflict: no feasible
                       // version-chain slot (a newer version's writer, or a
                       // reader of an older version, is already ordered
                       // after the writer).
  kNumReasons,         // Sentinel: number of reasons (array sizing).
};

inline constexpr size_t kNumAbortReasons =
    static_cast<size_t>(AbortReason::kNumReasons);

/// Stable snake_case identifier (used as metric names and JSON keys).
const char* AbortReasonName(AbortReason reason);

/// One-line human explanation of the reason.
const char* AbortReasonDescription(AbortReason reason);

/// Explain-style string for one rejected operation, e.g.
///   "W3[x] rejected: lex_order (opposite order already fixed; blocker T2)".
/// `op_name` is the rendered operation (OpName() in core); `blocker` is the
/// transaction that fixed the conflicting order, 0 when not applicable.
std::string FormatReject(const std::string& op_name, AbortReason reason,
                         uint32_t blocker = 0);

/// Fixed-size per-reason tally. Plain (non-atomic) counters: instances are
/// owned by a single scheduler / shard / simulation and protected by its
/// synchronization, exactly like the stats structs they extend.
struct AbortReasonCounts {
  uint64_t counts[kNumAbortReasons] = {};

  void Add(AbortReason reason, uint64_t n = 1) {
    counts[static_cast<size_t>(reason)] += n;
  }
  uint64_t operator[](AbortReason reason) const {
    return counts[static_cast<size_t>(reason)];
  }
  /// Sum over every real reason (kNone excluded: a counted abort must have
  /// been classified).
  uint64_t total() const {
    uint64_t t = 0;
    for (size_t r = 1; r < kNumAbortReasons; ++r) t += counts[r];
    return t;
  }
  uint64_t unclassified() const { return counts[0]; }

  AbortReasonCounts& operator+=(const AbortReasonCounts& other) {
    for (size_t r = 0; r < kNumAbortReasons; ++r) counts[r] += other.counts[r];
    return *this;
  }

  /// JSON object {"lex_order": 3, ...} listing only nonzero reasons (or {}).
  std::string ToJson() const;
};

}  // namespace mdts

#endif  // MDTS_OBS_ABORT_REASON_H_
