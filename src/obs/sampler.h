#ifndef MDTS_OBS_SAMPLER_H_
#define MDTS_OBS_SAMPLER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/watchdog.h"

namespace mdts {

/// One timestamped registry snapshot in the sampler ring.
struct Sample {
  uint64_t seq = 0;   // Strictly increasing across the sampler's lifetime.
  double time = 0.0;  // Seconds: steady-clock (thread mode) or whatever
                      // monotone clock the manual driver passes (the DMT
                      // simulation passes simulated time).
  MetricsSnapshot snapshot;
};

/// Bucket-wise difference cur - prev of two snapshots of the SAME
/// histogram (cur taken later). count/sum/buckets subtract exactly; the
/// window's min is unknowable from cumulative state (reported as 0) and
/// max is bounded by cur.max, which Percentile() uses as its clamp.
HistogramSnapshot HistogramDelta(const HistogramSnapshot& cur,
                                 const HistogramSnapshot& prev);

struct SamplerOptions {
  /// Registry to snapshot. Required; must outlive the sampler.
  MetricsRegistry* registry = nullptr;

  /// Background-thread cadence (Start()). Manual TickOnce drivers ignore
  /// it; it is still exported as the interval hint in SeriesJson().
  uint64_t interval_ms = 100;

  /// Ring capacity: how many windows /series.json can look back on. At the
  /// default 100 ms cadence, 600 samples = one minute of history.
  size_t capacity = 600;
};

/// Windowed time-series sampler: periodically snapshots a MetricsRegistry
/// into a fixed-capacity ring and derives per-window rates (counter deltas
/// over dt) and histogram-delta percentiles on export. Runs either on its
/// own background thread (Start/Stop) or driven manually via TickOnce -
/// the DMT simulation ticks it on simulated time, which is what makes the
/// starvation-watchdog tests deterministic.
///
/// Thread safety: TickOnce, SeriesJson, Ring and alerts may be called
/// concurrently (one mutex serializes them); watchdogs must be added
/// before the first tick.
class Sampler {
 public:
  explicit Sampler(const SamplerOptions& options);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Registers a starvation watchdog evaluated at every tick, after the
  /// snapshot is taken (so the sample still shows the window's peak).
  void AddStarvationWatchdog(const StarvationWatchdogOptions& options);

  /// Registers a callback invoked at every tick, after the snapshot and
  /// the watchdogs (so a hook that consults the registry sees post-window
  /// state, and a watchdog alert raised this window has already run its
  /// on_alert). `seq`/`now` identify the window, as in Evaluate. This is
  /// how the obs layer drives engine-side consumers (e.g. the admission
  /// controller's TickOnce) without depending on them: hooks are plain
  /// functions. Add hooks before the first tick; they run on whichever
  /// thread ticks (the background thread under Start()).
  void AddTickHook(std::function<void(uint64_t seq, double now)> hook);

  /// Takes one sample at the given timestamp (seconds, any monotone
  /// clock). A non-increasing timestamp - e.g. a second simulation run
  /// restarting its clock at 0 - rebases that and all later ticks to
  /// resume just past the previous sample, so the ring's timestamps are
  /// always strictly monotone while within-run spacing stays exact.
  void TickOnce(double now_seconds);

  /// Takes one sample at the steady-clock time since construction.
  void TickOnce();

  /// Spawns the background thread sampling every interval_ms. No-op if
  /// already running.
  void Start();

  /// Stops and joins the background thread (idempotent; the destructor
  /// calls it). Manual TickOnce remains usable afterwards.
  void Stop();

  /// Copy of the ring, oldest first.
  std::vector<Sample> Ring() const;

  /// Alerts across every registered watchdog, in raise order.
  std::vector<WatchdogAlert> alerts() const;

  /// Total ticks taken (>= ring size once the ring has wrapped).
  uint64_t samples_taken() const;

  /// The ring as derived windows, newest state last:
  ///   {"interval_ms": ..., "samples_taken": ...,
  ///    "windows": [{"seq", "t", "dt", "rates": {counter: delta/dt},
  ///                 "gauges": {...}, "histograms": {name: {"count",
  ///                 "p50", "p99"}}}, ...],
  ///    "alerts": [WatchdogAlert...]}
  /// Windows need two samples; rates list counters with nonzero deltas,
  /// histograms entries with nonzero window counts.
  std::string SeriesJson() const;

  const SamplerOptions& options() const { return options_; }

 private:
  void TickLocked(double now);
  double SteadySeconds() const;

  SamplerOptions options_;
  mutable std::mutex mu_;
  std::deque<Sample> ring_;
  std::deque<StarvationWatchdog> watchdogs_;
  std::vector<std::function<void(uint64_t, double)>> tick_hooks_;
  uint64_t seq_ = 0;
  double last_time_ = 0.0;
  double time_offset_ = 0.0;  // Rebase across clock-restarting drivers.
  bool ticked_ = false;

  std::thread thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace mdts

#endif  // MDTS_OBS_SAMPLER_H_
