#include "obs/flight.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <ctime>
#include <string>

namespace mdts {

const char* TxnPhaseName(TxnPhase phase) {
  switch (phase) {
    case TxnPhase::kAdmission:
      return "admission";
    case TxnPhase::kLock:
      return "lock";
    case TxnPhase::kDecide:
      return "decide";
    case TxnPhase::kMvRead:
      return "mv_read";
    case TxnPhase::kWalAppend:
      return "wal_append";
    case TxnPhase::kFsync:
      return "fsync";
    case TxnPhase::kAck:
      return "ack";
    case TxnPhase::kNumPhases:
      break;
  }
  return "unknown";
}

uint64_t FlightRecorder::CoarseNowUs() {
  timespec ts;
#ifdef CLOCK_MONOTONIC_COARSE
  clock_gettime(CLOCK_MONOTONIC_COARSE, &ts);
#else
  clock_gettime(CLOCK_MONOTONIC, &ts);
#endif
  return static_cast<uint64_t>(ts.tv_sec) * 1000000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1000;
}

std::string FlightRecord::ToJson() const {
  std::string out = "{\"seq\": " + std::to_string(seq);
  out += ", \"time_us\": " + std::to_string(time_us);
  out += ", \"ring\": " + std::to_string(ring);
  out += ", \"txn\": " + std::to_string(txn);
  out += std::string(", \"event\": \"") + (commit ? "commit" : "abort") + "\"";
  if (!commit) {
    out += std::string(", \"reason\": \"") + AbortReasonName(reason) + "\"";
    if (blocker != 0) out += ", \"blocker\": " + std::to_string(blocker);
    if (has_op) {
      out += std::string(", \"op_type\": \"") +
             (op.type == OpType::kWrite ? "W" : "R") + "\"";
      out += ", \"op_item\": " + std::to_string(op.item);
    }
  }
  out += ", \"shard_mask\": " + std::to_string(shard_mask);
  out += ", \"writes_total\": " + std::to_string(writes_total);
  out += ", \"writes\": [";
  for (size_t q = 0; q < writes.size(); ++q) {
    if (q != 0) out += ", ";
    out += std::to_string(writes[q]);
  }
  out += "]";
  if (phases_sampled) {
    out += ", \"phases\": {";
    bool first = true;
    for (size_t p = 0; p < kNumTxnPhases; ++p) {
      if (!first) out += ", ";
      first = false;
      out += std::string("\"") + TxnPhaseName(static_cast<TxnPhase>(p)) +
             "\": " + std::to_string(phase_us[p]);
    }
    out += "}";
  }
  out += ", \"k\": " + std::to_string(k);
  out += ", \"vec\": [";
  for (size_t m = 0; m < vec.size(); ++m) {
    if (m != 0) out += ", ";
    out += vec[m] == kUndefinedElement ? std::string("\"*\"")
                                       : std::to_string(vec[m]);
  }
  out += "]}";
  return out;
}

std::string ControlEvent::ToJson() const {
  std::string out = "{\"seq\": " + std::to_string(seq);
  out += ", \"time_us\": " + std::to_string(time_us);
  out += ", \"event\": \"control\", \"action\": \"" + action + "\"";
  out += ", \"batch_size\": " + std::to_string(batch_size);
  out += ", \"k\": " + std::to_string(k) + "}";
  return out;
}

namespace {

uint64_t RoundUpPow2(uint64_t v) {
  if (v < 2) return 2;
  return std::bit_ceil(v);
}

}  // namespace

FlightRecorder::FlightRecorder(const FlightRecorderOptions& options)
    : options_(options),
      mask_(RoundUpPow2(options.capacity == 0 ? 1 : options.capacity) - 1),
      ring_mask_(std::bit_ceil(options.rings < 1 ? size_t{1} : options.rings) -
                 1) {
  options_.rings = ring_mask_ + 1;
  options_.capacity = mask_ + 1;
  rings_ = std::make_unique<Ring[]>(ring_mask_ + 1);
  for (size_t r = 0; r <= ring_mask_; ++r) {
    rings_[r].slots = std::make_unique<Slot[]>(mask_ + 1);
  }
}

void FlightRecorder::Record(size_t ring, TxnId txn, bool commit,
                            AbortReason reason, TxnId blocker, const Op* op,
                            bool sampled, uint32_t shard_mask,
                            uint32_t writes_total,
                            std::span<const ItemId> writes,
                            const uint32_t* phase_us,
                            const TimestampVector* vec, uint64_t time_us) {
  Ring& r = rings_[ring & ring_mask_];
  const uint64_t ticket = r.head.fetch_add(1, std::memory_order_relaxed);
  Slot& s = r.slots[ticket & mask_];
  // Invalidate first so a concurrent drain caught mid-copy sees the stamp
  // move and drops the slot instead of mixing two records.
  s.stamp.store(0, std::memory_order_release);
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;

  const size_t k = vec != nullptr ? vec->size() : 0;
  const size_t k_rec = std::min(k, kMaxVecElements);
  const size_t nw = std::min(writes.size(), kMaxWrites);
  uint64_t flags = 0;
  if (commit) flags |= 1;
  if (op != nullptr) flags |= 2;
  if (sampled) flags |= 4;
  if (op != nullptr && op->type == OpType::kWrite) flags |= 8;

  auto put = [&](size_t idx, uint64_t v) {
    s.w[idx].store(v, std::memory_order_relaxed);
  };
  put(0, seq);
  put(1, time_us);
  put(2, static_cast<uint64_t>(txn) | (flags << 32) |
             (static_cast<uint64_t>(reason) << 40) |
             (static_cast<uint64_t>(k_rec) << 48) |
             (static_cast<uint64_t>(nw) << 56));
  put(3, static_cast<uint64_t>(blocker) |
             (static_cast<uint64_t>(op != nullptr ? op->item : 0) << 32));
  put(4, static_cast<uint64_t>(shard_mask) |
             (static_cast<uint64_t>(writes_total) << 32));
  // Dead words are not stored: Drain() decodes phase words only when the
  // sampled flag is set, write words only up to nw, and vector words only
  // up to k_rec, so whatever a slot's previous occupant left there is
  // unreachable. A typical record (k <= 4, unsampled) then touches two
  // cache lines instead of three - on a cycling ring every line is cold,
  // so the skipped stores are the record's main cost.
  if (phase_us != nullptr) {
    for (size_t w = 0; w < kPhaseWords; ++w) {
      const size_t p = w * 2;
      uint64_t v = phase_us[p];
      if (p + 1 < kNumTxnPhases) {
        v |= static_cast<uint64_t>(phase_us[p + 1]) << 32;
      }
      put(kHeaderWords + w, v);
    }
  }
  for (size_t w = 0; w * 2 < nw; ++w) {
    const size_t q = w * 2;
    uint64_t v = writes[q];
    if (q + 1 < nw) v |= static_cast<uint64_t>(writes[q + 1]) << 32;
    put(kHeaderWords + kPhaseWords + w, v);
  }
  for (size_t m = 0; m < k_rec; ++m) {
    put(kHeaderWords + kPhaseWords + kWriteWords + m,
        std::bit_cast<uint64_t>(static_cast<int64_t>(vec->Get(m))));
  }
  s.stamp.store(ticket + 1, std::memory_order_release);
  // Warm this ring's NEXT slot before leaving. The stores above hit cold
  // lines (a cycling ring evicts faster than it revisits); they sit in the
  // store buffer until the RFOs complete, and the caller's next locked RMW
  // - commit-point unlock, shard lock, metrics counter - drains the buffer
  // and eats that latency. Prefetching here gives the lines a full
  // inter-record gap (microseconds) to arrive, where a hint at commit
  // entry only leads the stores by tens of nanoseconds.
  const char* next = reinterpret_cast<const char*>(&r.slots[(ticket + 1) & mask_]);
  __builtin_prefetch(next, 1, 0);
  __builtin_prefetch(next + 64, 1, 0);
  __builtin_prefetch(next + 128, 1, 0);
}

void FlightRecorder::RecordCommit(size_t ring, TxnId txn,
                                  const TimestampVector& vec,
                                  uint32_t shard_mask,
                                  std::span<const ItemId> writes,
                                  const uint32_t* phase_us, uint64_t time_us) {
  commits_.fetch_add(1, std::memory_order_relaxed);
  Record(ring, txn, /*commit=*/true, AbortReason::kNone, 0, nullptr,
         phase_us != nullptr, shard_mask,
         static_cast<uint32_t>(writes.size()), writes, phase_us, &vec,
         time_us);
}

void FlightRecorder::RecordCommit(size_t ring, TxnId txn,
                                  const TimestampVector& vec,
                                  uint32_t shard_mask,
                                  std::span<const ItemId> writes,
                                  uint32_t writes_total,
                                  const uint32_t* phase_us, uint64_t time_us) {
  commits_.fetch_add(1, std::memory_order_relaxed);
  Record(ring, txn, /*commit=*/true, AbortReason::kNone, 0, nullptr,
         phase_us != nullptr, shard_mask, writes_total, writes, phase_us,
         &vec, time_us);
}

void FlightRecorder::RecordAbort(size_t ring, TxnId txn, AbortReason reason,
                                 TxnId blocker, const Op* op,
                                 uint32_t shard_mask,
                                 const TimestampVector* vec,
                                 uint64_t time_us) {
  aborts_by_reason_[static_cast<size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
  Record(ring, txn, /*commit=*/false, reason, blocker, op, false, shard_mask,
         0, {}, nullptr, vec, time_us);
}

void FlightRecorder::RecordControl(std::string action, uint32_t batch_size,
                                   uint32_t k, uint64_t time_us) {
  ControlEvent ev;
  ev.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  ev.time_us = time_us;
  ev.action = std::move(action);
  ev.batch_size = batch_size;
  ev.k = k;
  std::lock_guard<std::mutex> g(control_mu_);
  control_.push_back(std::move(ev));
  if (control_.size() > mask_ + 1) control_.pop_front();
}

std::vector<ControlEvent> FlightRecorder::ControlEvents() const {
  std::lock_guard<std::mutex> g(control_mu_);
  return {control_.begin(), control_.end()};
}

std::vector<FlightRecord> FlightRecorder::Drain() const {
  std::vector<FlightRecord> out;
  uint64_t words[kPayloadWords];
  for (size_t ri = 0; ri <= ring_mask_; ++ri) {
    const Ring& r = rings_[ri];
    for (uint64_t sl = 0; sl <= mask_; ++sl) {
      const Slot& s = r.slots[sl];
      const uint64_t s1 = s.stamp.load(std::memory_order_acquire);
      if (s1 == 0) continue;
      for (size_t w = 0; w < kPayloadWords; ++w) {
        words[w] = s.w[w].load(std::memory_order_relaxed);
      }
      if (s.stamp.load(std::memory_order_acquire) != s1) continue;  // Torn.
      FlightRecord rec;
      rec.seq = words[0];
      rec.time_us = words[1];
      rec.ring = static_cast<uint32_t>(ri);
      rec.txn = static_cast<TxnId>(words[2] & 0xFFFFFFFFu);
      const uint64_t flags = (words[2] >> 32) & 0xFF;
      rec.commit = (flags & 1) != 0;
      rec.has_op = (flags & 2) != 0;
      rec.phases_sampled = (flags & 4) != 0;
      rec.reason = static_cast<AbortReason>((words[2] >> 40) & 0xFF);
      const size_t k_rec = (words[2] >> 48) & 0xFF;
      const size_t nw = (words[2] >> 56) & 0xFF;
      rec.blocker = static_cast<TxnId>(words[3] & 0xFFFFFFFFu);
      if (rec.has_op) {
        rec.op.txn = rec.txn;
        rec.op.type = (flags & 8) != 0 ? OpType::kWrite : OpType::kRead;
        rec.op.item = static_cast<ItemId>(words[3] >> 32);
      }
      rec.shard_mask = static_cast<uint32_t>(words[4] & 0xFFFFFFFFu);
      rec.writes_total = static_cast<uint32_t>(words[4] >> 32);
      if (rec.phases_sampled) {
        // Unsampled records skip the phase stores (see Record), so the
        // words may hold a previous occupant's slices - leave the zeros.
        for (size_t p = 0; p < kNumTxnPhases; ++p) {
          const uint64_t v = words[kHeaderWords + p / 2];
          rec.phase_us[p] =
              static_cast<uint32_t>(p % 2 == 0 ? v & 0xFFFFFFFFu : v >> 32);
        }
      }
      for (size_t q = 0; q < nw; ++q) {
        const uint64_t v = words[kHeaderWords + kPhaseWords + q / 2];
        rec.writes.push_back(
            static_cast<ItemId>(q % 2 == 0 ? v & 0xFFFFFFFFu : v >> 32));
      }
      rec.k = k_rec;  // The recorded vector's size (cells may differ in k).
      for (size_t m = 0; m < k_rec; ++m) {
        rec.vec.push_back(static_cast<TsElement>(std::bit_cast<int64_t>(
            words[kHeaderWords + kPhaseWords + kWriteWords + m])));
      }
      out.push_back(std::move(rec));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

uint64_t FlightRecorder::aborts() const {
  uint64_t total = 0;
  for (size_t r = 0; r < kNumAbortReasons; ++r) {
    total += aborts_by_reason_[r].load(std::memory_order_relaxed);
  }
  return total;
}

AbortReasonCounts FlightRecorder::abort_reasons() const {
  AbortReasonCounts c;
  for (size_t r = 0; r < kNumAbortReasons; ++r) {
    c.counts[r] = aborts_by_reason_[r].load(std::memory_order_relaxed);
  }
  return c;
}

std::string FlightRecorder::ToJson() const {
  const std::vector<FlightRecord> records = Drain();
  std::string out = "{\"meta\": {\"rings\": " + std::to_string(ring_mask_ + 1);
  out += ", \"capacity\": " + std::to_string(mask_ + 1);
  out += ", \"k\": " + std::to_string(options_.k) + "}";
  out += ", \"totals\": {\"commits\": " + std::to_string(commits());
  out += ", \"aborts\": " + std::to_string(aborts());
  out += ", \"abort_reasons\": " + abort_reasons().ToJson() + "}";
  out += ", \"records\": [";
  for (size_t q = 0; q < records.size(); ++q) {
    if (q != 0) out += ", ";
    out += records[q].ToJson();
  }
  out += "]";
  // Control events only appear when an actuator recorded any, so dumps
  // from uncontrolled runs are byte-identical to the pre-control format.
  const std::vector<ControlEvent> control = ControlEvents();
  if (!control.empty()) {
    out += ", \"control\": [";
    for (size_t q = 0; q < control.size(); ++q) {
      if (q != 0) out += ", ";
      out += control[q].ToJson();
    }
    out += "]";
  }
  out += "}";
  return out;
}

bool FlightRecorder::DumpToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "flight: cannot open %s\n", path.c_str());
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "flight: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace mdts
