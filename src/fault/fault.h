#ifndef MDTS_FAULT_FAULT_H_
#define MDTS_FAULT_FAULT_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace mdts {

/// One scheduled whole-site failure. At `crash_time` the site loses its
/// volatile state (lock table, queued lock requests, in-flight work);
/// messages to or from the site are lost while it is down. At
/// `recover_time` the site rejoins with its durable state (item records,
/// timestamp vectors) intact and its counters rebuilt through the
/// resynchronization path.
struct SiteCrash {
  uint32_t site = 0;
  double crash_time = 0.0;
  /// Simulated time the site comes back; infinity = stays down forever.
  double recover_time = std::numeric_limits<double>::infinity();
};

/// Declarative, seeded description of the faults injected into one run.
/// Message-level faults apply to inter-site messages only - a site's local
/// calls do not traverse the network. Crashes follow a fixed schedule so
/// that every faulty run is exactly reproducible from (plan, seed).
struct FaultPlan {
  double drop_rate = 0.0;       ///< P(an inter-site message is lost).
  double duplicate_rate = 0.0;  ///< P(an inter-site message arrives twice).
  double jitter = 0.0;          ///< Mean of exponential extra delay / copy.
  std::vector<SiteCrash> crashes;

  bool any_faults() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || jitter > 0.0 ||
           !crashes.empty();
  }
};

/// Process-crash points for the parallel WAL (src/wal): where, relative
/// to the append -> write -> fdatasync pipeline, the process dies. The
/// WAL realizes the crash by refusing further appends and truncating each
/// stream file to the bytes a real crash at that point would have left.
enum class WalCrashPoint : uint8_t {
  kNone = 0,
  /// Die with records buffered / written but not yet fsynced: every
  /// unsynced byte is lost and the image is the last synced prefix.
  kBeforeFsync,
  /// Die partway through writing a record frame: the image ends in a torn
  /// partial record that recovery must detect (CRC / length) and truncate.
  kMidRecord,
  /// Die after one stream's group-commit fsync completed but before the
  /// peer streams synced theirs: the streams diverge and recovery must
  /// merge unequal prefixes.
  kBetweenStreams,
};

/// Stable identifier ("before_fsync", "mid_record", "between_streams").
const char* WalCrashPointName(WalCrashPoint point);

/// Declarative process-crash schedule for one WAL run: the `at_append`-th
/// append (1-based, counted across all streams) triggers `point`.
struct WalCrashPlan {
  WalCrashPoint point = WalCrashPoint::kNone;
  uint64_t at_append = 0;
  /// kMidRecord: frame bytes that reach the disk image before the tear
  /// (clamped by the WAL to [1, frame size - 1]).
  uint64_t torn_bytes = 6;

  bool armed() const {
    return point != WalCrashPoint::kNone && at_append > 0;
  }
};

/// Engine-side crash schedule for multiversion runs: the `at_install`-th
/// version install (1-based, engine-wide) crashes the engine's attached WAL
/// at `point` via ParallelWal::CrashNow, so the process image tears in the
/// window between a version install and the commit append that would have
/// made it durable - recovery must rebuild only logged (committed) chains
/// and drop every version the crash stranded in flight.
struct MvInstallCrashPlan {
  WalCrashPoint point = WalCrashPoint::kBeforeFsync;
  uint64_t at_install = 0;

  bool armed() const {
    return point != WalCrashPoint::kNone && at_install > 0;
  }
};

/// Seeded message-fate oracle. Owns its own Rng so that enabling fault
/// injection cannot perturb the simulation's workload / think-time
/// randomness, and a plan with all rates zero consumes no randomness at
/// all: a clean run is bit-identical with or without the injector.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, uint64_t seed);

  /// Decides the fate of one inter-site message with nominal one-way
  /// latency `base_latency`: returns the latency of each delivered copy.
  /// Empty = dropped; two entries = duplicated. Jitter is drawn fresh per
  /// copy, so duplicate copies arrive at distinct times.
  std::vector<double> Deliveries(double base_latency);

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  Rng rng_;
};

}  // namespace mdts

#endif  // MDTS_FAULT_FAULT_H_
