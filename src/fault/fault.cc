#include "fault/fault.h"

namespace mdts {

const char* WalCrashPointName(WalCrashPoint point) {
  switch (point) {
    case WalCrashPoint::kNone:
      return "none";
    case WalCrashPoint::kBeforeFsync:
      return "before_fsync";
    case WalCrashPoint::kMidRecord:
      return "mid_record";
    case WalCrashPoint::kBetweenStreams:
      return "between_streams";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t seed)
    : plan_(plan), rng_(seed) {}

std::vector<double> FaultInjector::Deliveries(double base_latency) {
  std::vector<double> out;
  if (plan_.drop_rate > 0.0 && rng_.Chance(plan_.drop_rate)) return out;
  uint32_t copies = 1;
  if (plan_.duplicate_rate > 0.0 && rng_.Chance(plan_.duplicate_rate)) {
    copies = 2;
  }
  out.reserve(copies);
  for (uint32_t c = 0; c < copies; ++c) {
    double latency = base_latency;
    if (plan_.jitter > 0.0) latency += rng_.Exponential(plan_.jitter);
    out.push_back(latency);
  }
  return out;
}

}  // namespace mdts
