#ifndef MDTS_PARALLEL_PARALLEL_COMPARE_H_
#define MDTS_PARALLEL_PARALLEL_COMPARE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/timestamp_vector.h"

namespace mdts {

/// Result of the simulated parallel vector comparison (paper Section III-E,
/// Figs. 6-7): the same order/index a sequential Definition-6 scan yields,
/// plus the parallel cost model - the number of lockstep phases executed by
/// the simulated processor array. Phases 1, 2, 4, 5 are constant time; the
/// partial-OR phase 3 takes ceil(log2 k) rounds on the prefix tree, which
/// is Theorem 4's O(log k) bound.
struct ParallelCompareResult {
  VectorOrder order = VectorOrder::kIdentical;
  size_t index = 0;

  /// Total lockstep phases: 4 + ceil(log2 k).
  size_t phases = 0;

  /// Processors in the array (rows a, b, c, d of Fig. 6 share k columns).
  size_t processors = 0;
};

/// Simulates the five-phase processor-array comparison of two equal-size
/// vectors. Extends the paper's algorithm to undefined elements (the paper:
/// "the algorithm can be easily refined without affecting the time
/// complexity"): a position counts as unequal when the two elements are not
/// both-defined-equal; the first such position is then classified exactly
/// as Definition 6 classifies it.
ParallelCompareResult ParallelCompare(const TimestampVector& a,
                                      const TimestampVector& b);

/// As ParallelCompare, additionally appending a human-readable row trace of
/// every phase (the Fig. 6 walkthrough) to *trace.
ParallelCompareResult ParallelCompareTraced(const TimestampVector& a,
                                            const TimestampVector& b,
                                            std::vector<std::string>* trace);

/// Number of partial-OR rounds for vector size k: ceil(log2 k), 0 for k=1.
size_t PartialOrRounds(size_t k);

}  // namespace mdts

#endif  // MDTS_PARALLEL_PARALLEL_COMPARE_H_
