#include "parallel/parallel_compare.h"

#include <cassert>

namespace mdts {

size_t PartialOrRounds(size_t k) {
  size_t rounds = 0;
  size_t span = 1;
  while (span < k) {
    span *= 2;
    ++rounds;
  }
  return rounds;
}

namespace {

std::string RowToString(const char* label, const std::vector<int>& row) {
  std::string out = label;
  out += ": ";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(row[i]);
  }
  return out;
}

std::string ElemToString(TsElement e) {
  return e == kUndefinedElement ? std::string("*") : std::to_string(e);
}

ParallelCompareResult Run(const TimestampVector& a, const TimestampVector& b,
                          std::vector<std::string>* trace) {
  assert(a.size() == b.size());
  const size_t k = a.size();
  ParallelCompareResult result;
  result.processors = 4 * k;  // Rows a, b, c, d of the Fig. 6 array.

  // Phase 1: load the vector elements (all columns in parallel).
  if (trace != nullptr) {
    std::string ra = "a:", rb = "b:";
    for (size_t i = 0; i < k; ++i) {
      ra += " " + ElemToString(a.Get(i));
      rb += " " + ElemToString(b.Get(i));
    }
    trace->push_back("phase 1 (load)");
    trace->push_back(ra);
    trace->push_back(rb);
  }

  // Phase 2: columnwise subtraction; c_i = 0 iff the elements are equal
  // (both defined with the same value), 1 otherwise.
  std::vector<int> c(k, 0);
  for (size_t i = 0; i < k; ++i) {
    const bool equal = a.IsDefined(i) && b.IsDefined(i) && a.Get(i) == b.Get(i);
    c[i] = equal ? 0 : 1;
  }
  if (trace != nullptr) {
    trace->push_back("phase 2 (subtract)");
    trace->push_back(RowToString("c", c));
  }

  // Phase 3: parallel partial OR d_i = c_1 | ... | c_i in ceil(log2 k)
  // doubling rounds.
  std::vector<int> d = c;
  size_t rounds = 0;
  for (size_t span = 1; span < k; span *= 2) {
    std::vector<int> next = d;
    for (size_t i = span; i < k; ++i) next[i] = d[i] | d[i - span];
    d = std::move(next);
    ++rounds;
    if (trace != nullptr) {
      trace->push_back("phase 3 round " + std::to_string(rounds) +
                       " (partial OR, span " + std::to_string(span) + ")");
      trace->push_back(RowToString("d", d));
    }
  }
  assert(rounds == PartialOrRounds(k));

  // Phase 4: the unique processor with d_i = 1 and d_{i-1} = 0 identifies
  // the first unequal column.
  size_t first = k;
  for (size_t i = 0; i < k; ++i) {
    const int left = i == 0 ? 0 : d[i - 1];
    if (d[i] == 1 && left == 0) {
      first = i;
      break;
    }
  }
  if (trace != nullptr) {
    trace->push_back(first == k
                         ? "phase 4: no unequal column (identical vectors)"
                         : "phase 4: first unequal column = " +
                               std::to_string(first + 1) + " (1-based)");
  }

  // Phase 5: the order follows from the pair at that column.
  if (first == k) {
    result.order = VectorOrder::kIdentical;
    result.index = k;
  } else {
    result.index = first;
    const bool da = a.IsDefined(first);
    const bool db = b.IsDefined(first);
    if (da && db) {
      result.order = a.Get(first) < b.Get(first) ? VectorOrder::kLess
                                                 : VectorOrder::kGreater;
    } else if (!da && !db) {
      result.order = VectorOrder::kEqual;
    } else {
      result.order = VectorOrder::kUndetermined;
    }
  }
  if (trace != nullptr) {
    trace->push_back(std::string("phase 5: order = ") +
                     VectorOrderName(result.order));
  }
  result.phases = 4 + rounds;
  return result;
}

}  // namespace

ParallelCompareResult ParallelCompare(const TimestampVector& a,
                                      const TimestampVector& b) {
  return Run(a, b, nullptr);
}

ParallelCompareResult ParallelCompareTraced(const TimestampVector& a,
                                            const TimestampVector& b,
                                            std::vector<std::string>* trace) {
  return Run(a, b, trace);
}

}  // namespace mdts
