#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <vector>

#include "common/backoff.h"
#include "common/rng.h"

namespace mdts {

namespace {

struct Event {
  double time = 0.0;
  uint64_t seq = 0;  // FIFO tie-break for equal times.
  TxnId txn = 0;
  enum class Kind { kIssue, kRestart } kind = Kind::kIssue;

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct TxnRuntime {
  std::vector<Op> program;
  size_t next_op = 0;
  size_t rejected_at = 0;       // Op index of the last rejection.
  size_t replay_until = 0;      // Prefix replayed for free (partial rb).
  uint32_t attempts = 0;        // Also the incarnation number.
  uint32_t consecutive_aborts = 0;
  bool started = false;
  bool blocked = false;
  bool done = false;            // Committed or gave up.
  bool committed = false;
  uint32_t committed_attempt = 0;
  double first_start = 0.0;
  size_t incarnation_op_count = 0;  // Accepted ops of this incarnation.
  std::vector<Op> deferred_write_ops;  // Buffered writes (deferred mode).
};

// One globally ordered record per accepted operation, so the committed
// history used by the serializability audit preserves the true execution
// interleaving (filtered at the end to committed incarnations).
struct ExecutedOp {
  Op op;
  uint32_t attempt = 0;
};

}  // namespace

SimResult RunSimulation(Scheduler* scheduler, const SimOptions& options) {
  Rng rng(options.seed);
  std::vector<std::vector<Op>> programs;
  if (!options.programs.empty()) {
    programs = options.programs;
    // Explicit programs must use transaction ids 1..n in order.
    for (size_t i = 0; i < programs.size(); ++i) {
      for (Op& op : programs[i]) op.txn = static_cast<TxnId>(i + 1);
    }
  } else {
    WorkloadOptions w = options.workload;
    w.num_txns = options.num_txns;
    w.seed = options.seed * 7919 + 17;
    Rng wrng(w.seed);
    programs = GenerateTxnPrograms(w, &wrng);
  }
  const uint32_t num_txns = static_cast<uint32_t>(programs.size());

  SimResult result;
  std::vector<ExecutedOp> executed;
  std::vector<TxnRuntime> txns(num_txns + 1);
  for (TxnId t = 1; t <= num_txns; ++t) {
    txns[t].program = programs[t - 1];
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  uint64_t seq = 0;
  double now = 0.0;

  TxnId next_to_start = 1;
  auto start_next_txn = [&](double at) {
    if (next_to_start > num_txns) return;
    const TxnId t = next_to_start++;
    txns[t].started = true;
    txns[t].first_start = at;
    scheduler->OnBegin(t);
    queue.push(Event{at, ++seq, t, Event::Kind::kIssue});
  };

  const uint32_t initial =
      std::min(options.concurrency, num_txns);
  for (uint32_t c = 0; c < initial; ++c) {
    start_next_txn(rng.Exponential(options.mean_think_time) * 0.1);
  }

  double total_response = 0.0;

  // Restart delays go through the shared BackoffPolicy (see
  // common/backoff.h). The closed-loop simulator uses a flat mean
  // (multiplier 1): there is no network to shed load from, only the
  // livelock-breaking jitter matters here.
  const BackoffPolicy restart_backoff{options.restart_delay, 1.0,
                                      options.restart_delay};

  auto handle_abort = [&](TxnRuntime& rt, TxnId t) {
    ++result.aborts;
    ++rt.consecutive_aborts;
    result.max_consecutive_aborts =
        std::max<uint64_t>(result.max_consecutive_aborts,
                           rt.consecutive_aborts);
    rt.rejected_at = rt.next_op;
    // Think time spent on this incarnation's accepted ops beyond any free
    // replay is wasted.
    const size_t paid = rt.incarnation_op_count >= rt.replay_until
                            ? rt.incarnation_op_count - rt.replay_until
                            : 0;
    result.ops_wasted += paid;
    rt.incarnation_op_count = 0;
    rt.deferred_write_ops.clear();
    ++rt.attempts;
    if (rt.attempts >= options.max_attempts) {
      ++result.gave_up;
      rt.done = true;
      scheduler->OnRestart(t);  // Release any scheduler state.
      start_next_txn(now + options.restart_delay);
      return;
    }
    // Jittered restart delay: a deterministic delay lets pairs of
    // transactions that invalidate each other's reads retry in lockstep
    // forever (OCC-style livelock); exponential jitter desynchronizes them.
    queue.push(Event{now + restart_backoff.ExpJitterDelay(
                               rt.consecutive_aborts - 1, &rng),
                     ++seq, t, Event::Kind::kRestart});
  };

  auto drain_unblocked = [&]() {
    for (TxnId t : scheduler->TakeUnblocked()) {
      TxnRuntime& rt = txns[t];
      if (rt.done || !rt.blocked) continue;
      rt.blocked = false;
      // The blocked operation executed once the lock was granted: count it
      // as accepted now.
      ++result.ops_executed;
      executed.push_back(ExecutedOp{rt.program[rt.next_op], rt.attempts});
      ++rt.incarnation_op_count;
      ++rt.next_op;
      queue.push(Event{now + rng.Exponential(options.mean_think_time), ++seq,
                       t, Event::Kind::kIssue});
    }
  };

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    now = ev.time;
    TxnRuntime& rt = txns[ev.txn];
    if (rt.done) continue;

    if (ev.kind == Event::Kind::kRestart) {
      rt.next_op = 0;
      rt.replay_until = options.partial_rollback ? rt.rejected_at : 0;
      scheduler->OnRestart(ev.txn);
      scheduler->OnBegin(ev.txn);
      queue.push(Event{now, ++seq, ev.txn, Event::Kind::kIssue});
      continue;
    }

    if (rt.blocked) continue;  // Superseded event.

    if (rt.next_op >= rt.program.size()) {
      // Commit attempt.
      const SchedOutcome outcome = scheduler->OnCommit(ev.txn);
      drain_unblocked();
      if (outcome == SchedOutcome::kAccepted) {
        ++result.committed;
        rt.consecutive_aborts = 0;
        rt.done = true;
        rt.committed = true;
        rt.committed_attempt = rt.attempts;
        for (const Op& write : rt.deferred_write_ops) {
          executed.push_back(ExecutedOp{write, rt.attempts});
        }
        rt.deferred_write_ops.clear();
        total_response += now - rt.first_start;
        start_next_txn(now + rng.Exponential(options.mean_think_time) * 0.1);
      } else {
        handle_abort(rt, ev.txn);
      }
      continue;
    }

    const Op& op = rt.program[rt.next_op];
    const SchedOutcome outcome = scheduler->OnOperation(op);
    switch (outcome) {
      case SchedOutcome::kAccepted:
      case SchedOutcome::kIgnored: {
        if (outcome == SchedOutcome::kAccepted) {
          ++result.ops_executed;
          // Deferred-write schedulers buffer writes privately; the write's
          // effect happens at commit, so the audit records it there.
          if (op.type == OpType::kWrite && scheduler->deferred_writes()) {
            rt.deferred_write_ops.push_back(op);
          } else {
            executed.push_back(ExecutedOp{op, rt.attempts});
          }
          ++rt.incarnation_op_count;
        }
        const bool free_replay = rt.next_op < rt.replay_until;
        if (free_replay) ++result.ops_replayed_free;
        ++rt.next_op;
        const double delay =
            free_replay ? 0.0 : rng.Exponential(options.mean_think_time);
        queue.push(Event{now + delay, ++seq, ev.txn, Event::Kind::kIssue});
        break;
      }
      case SchedOutcome::kBlocked:
        ++result.block_events;
        rt.blocked = true;
        break;
      case SchedOutcome::kAborted:
        handle_abort(rt, ev.txn);
        break;
    }
    drain_unblocked();
  }

  // Committed history: accepted operations of committed incarnations, in
  // true execution order.
  for (const ExecutedOp& e : executed) {
    const TxnRuntime& rt = txns[e.op.txn];
    if (rt.committed && e.attempt == rt.committed_attempt) {
      result.committed_history.Append(e.op);
    }
  }

  result.makespan = now;
  if (result.committed > 0) {
    result.avg_response_time =
        total_response / static_cast<double>(result.committed);
  }
  if (result.makespan > 0) {
    result.throughput =
        static_cast<double>(result.committed) / result.makespan;
  }
  return result;
}

}  // namespace mdts
