#ifndef MDTS_SIM_SIMULATOR_H_
#define MDTS_SIM_SIMULATOR_H_

#include <cstdint>

#include "core/log.h"
#include "sched/scheduler.h"
#include "workload/generator.h"

namespace mdts {

/// Parameters of the closed-loop transaction-processing simulation. A fixed
/// multiprogramming level of transactions runs concurrently (the paper's
/// implementation note III-D-6a cites 8-10 as typical); whenever one
/// commits, the next pending transaction starts. Aborted transactions
/// restart after a delay, optionally with partial rollback (Section
/// VI-C-1): the computation results of the operations before the rejected
/// one are preserved, so the re-run replays that prefix without paying
/// think time again (scheduling decisions are still re-validated).
struct SimOptions {
  /// Total number of distinct transactions to run to commit.
  uint32_t num_txns = 100;

  /// Multiprogramming level.
  uint32_t concurrency = 8;

  /// Mean (exponential) time between a transaction's operations.
  double mean_think_time = 1.0;

  /// Delay before an aborted transaction restarts.
  double restart_delay = 2.0;

  /// Section VI-C-1 partial rollback (see struct comment).
  bool partial_rollback = false;

  /// A transaction aborted this many times gives up (counted separately;
  /// prevents livelock from starving the simulation).
  uint32_t max_attempts = 200;

  /// Shape of the transaction programs (num_txns here is overridden).
  WorkloadOptions workload;

  /// If non-empty, these explicit per-transaction programs are used instead
  /// of generating from `workload`: programs[i] is the operation list of
  /// transaction i+1, and num_txns is taken from the vector size. Lets
  /// applications (see examples/banking_sim.cc) drive the simulator with
  /// domain-specific transactions.
  std::vector<std::vector<Op>> programs;

  uint64_t seed = 1;
};

/// Aggregate outcome of one simulation run.
struct SimResult {
  uint64_t committed = 0;
  uint64_t aborts = 0;           // Abort events (restarts attempted).
  uint64_t gave_up = 0;          // Transactions that hit max_attempts.
  uint64_t block_events = 0;     // kBlocked outcomes (2PL waits).
  uint64_t ops_executed = 0;     // Accepted operations, including re-runs.
  uint64_t ops_wasted = 0;       // Operations whose think time was spent in
                                 // incarnations that later aborted.
  uint64_t ops_replayed_free = 0;  // Prefix ops replayed without think time
                                   // under partial rollback.
  uint64_t max_consecutive_aborts = 0;  // Starvation indicator.
  double makespan = 0.0;
  double avg_response_time = 0.0;       // Over committed transactions.
  double throughput = 0.0;              // committed / makespan.

  /// Operations executed by incarnations that eventually committed, in
  /// execution order: the audit input (must always be DSR).
  Log committed_history;
};

/// Runs the closed-loop simulation of the scheduler over synthetic
/// transaction programs.
SimResult RunSimulation(Scheduler* scheduler, const SimOptions& options);

}  // namespace mdts

#endif  // MDTS_SIM_SIMULATOR_H_
