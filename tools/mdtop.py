#!/usr/bin/env python3
"""mdtop: a tiny top(1)-style terminal view of the live telemetry exporter.

Usage:
    tools/mdtop.py [--host=H] [--port=P] [--interval=SECS] [--once]

Polls http://HOST:PORT/series.json (the windowed Sampler export served by
`mt_throughput --serve` / `fault_sweep --serve`) and redraws one screen per
poll: the newest window's counter rates split into throughput (commit
counters) and an abort-reason mix with proportional bars, the gauge values,
and the most recent starvation-watchdog alerts. When the exporter also
serves /phases.json (per-transaction latency attribution), a phases pane
shows each lifecycle phase's count, mean, p50/p99, max, and the exemplar
transaction behind the worst sample. When an AdmissionController publishes
engine.adaptive.* metrics, an adaptive-admission pane shows the current
batch width / active k and this window's grow/shrink/k-switch rates. A distributed pane lists the dmt.*
rates - or an explicit "no dist metrics" placeholder when the exporter is
engine-only - and, when /paths.json is live (fault_sweep --serve --paths),
a critical-path pane with the per-segment-class share of distributed time
and the slowest transactions. --once prints a single frame without
clearing the screen and exits (scriptable; the docs' sample output comes
from it).

Standard library only; no third-party dependencies. Exits 0 on Ctrl-C,
1 when the exporter cannot be reached.

Sample frame:

    mdtop  127.0.0.1:9464  window #42 t=12.30 dt=0.100  (50 windows, 1 alert)

    throughput
      dmt.committed                         4520.0/s
    aborts
      dmt.aborts.lex_order                   312.0/s  ##################
      dmt.aborts.down_site                    41.5/s  ##
    gauges
      dmt.max_consecutive_aborts                  12
      obs.starvation_alert.dmt.max_consec...       1  ALERT
    phases (lifetime, us)
      lock        n=1284 mean=3 p50=1 p99=15 max=412  worst T731
      wal_append  n=1284 mean=48 p50=31 p99=255 max=1023  worst T98
    alerts (latest first)
      {"source": "dmt.max_consecutive_aborts", "threshold": 8, ...}
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

CLEAR = "\x1b[2J\x1b[H"
BAR_WIDTH = 30
NAME_WIDTH = 42


def fetch(url, timeout):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def shorten(name):
    if len(name) <= NAME_WIDTH:
        return name
    return name[: NAME_WIDTH - 3] + "..."


# Lifecycle order of the engine's phase timers; phases the exporter reports
# that are not listed here (future additions) render after these, sorted.
PHASE_ORDER = ["admission", "lock", "decide", "mv_read", "wal_append",
               "fsync", "ack"]


def render_phases(phases, lines):
    """Append the per-phase latency attribution pane: one row per lifecycle
    phase with count, mean, p50/p99, max (all microseconds, lifetime
    distribution) and the exemplar - the transaction id stamped on the
    worst sample, the hop from a bad percentile to a flight-recorder or
    trace lookup."""
    named = [p for p in PHASE_ORDER if p in phases]
    named += sorted(p for p in phases if p not in PHASE_ORDER)
    rows = [p for p in named if phases[p].get("count", 0)]
    if not rows:
        return
    lines.append("phases (lifetime, us)")
    width = max(len(p) for p in rows)
    for p in rows:
        h = phases[p]
        count = h.get("count", 0)
        mean = h.get("sum_us", 0) // max(count, 1)
        ex = h.get("exemplar", {})
        lines.append(
            f"  {p:<{width}}  n={count} mean={mean} "
            f"p50={h.get('p50_us', 0)} p99={h.get('p99_us', 0)} "
            f"max={h.get('max_us', 0)}  worst T{ex.get('txn', '?')}")


def render_paths(paths, lines):
    """Append the distributed critical-path pane fed by /paths.json: the
    collector's lifetime per-segment-class split of where distributed
    transactions spend their time, plus the slowest retained transactions
    (the ones worth pulling out of the dump with tools/critical_path.py)."""
    agg = paths.get("aggregates", {}) if paths else {}
    total = int(agg.get("total_us", 0))
    if not agg.get("paths"):
        return
    lines.append("critical paths (lifetime, us)")
    lines.append(f"  {agg.get('paths', 0)} paths extracted "
                 f"({agg.get('committed', 0)} committed), "
                 f"{total} us on the critical path")
    segments = {n: int(v) for n, v in agg.get("segments", {}).items() if v}
    peak = max(segments.values(), default=0)
    for n in sorted(segments, key=segments.get, reverse=True):
        share = 100.0 * segments[n] / total if total else 0.0
        bar = "#" * int(round(segments[n] / peak * BAR_WIDTH)) if peak else ""
        lines.append(f"  {shorten(n):<{NAME_WIDTH}} {share:>11.1f}%  {bar}")
    for t in paths.get("txns", [])[:3]:
        lines.append(f"  slowest T{t.get('txn', '?')}: "
                     f"{t.get('latency_us', 0)} us, "
                     f"{t.get('attempts', '?')} attempt(s), "
                     + ("committed" if t.get("committed") else "gave up"))


def render(series, endpoint, phases=None, paths=None):
    windows = series.get("windows", [])
    alerts = series.get("alerts", [])
    lines = []
    if not windows:
        lines.append(f"mdtop  {endpoint}  waiting for windows "
                     f"({series.get('samples_taken', 0)} samples taken; "
                     "two are needed for the first rate window)")
        return "\n".join(lines) + "\n"
    w = windows[-1]
    active = sum(1 for a in alerts if a.get("active"))
    lines.append(
        f"mdtop  {endpoint}  window #{w.get('seq', '?')} "
        f"t={w.get('t', 0):.2f} dt={w.get('dt', 0):.3f}  "
        f"({len(windows)} windows, {len(alerts)} alerts"
        + (f", {active} ACTIVE" if active else "") + ")")
    lines.append("")

    rates = w.get("rates", {})
    commits = {n: r for n, r in rates.items() if n.endswith(".committed")
               or n.endswith(".commits")}
    aborts = {n: r for n, r in rates.items()
              if ".aborts." in n or ".rejected." in n}
    versions = {n: r for n, r in rates.items()
                if n.endswith(".versions_installed")
                or n.endswith(".versions_gc")}
    dist = {n: r for n, r in rates.items() if n.startswith("dmt.")
            and n not in commits and n not in aborts}
    adaptive = {n: r for n, r in rates.items() if ".adaptive." in n}
    other = {n: r for n, r in rates.items()
             if n not in commits and n not in aborts and n not in versions
             and n not in dist and n not in adaptive}

    lines.append("throughput")
    for n in sorted(commits):
        lines.append(f"  {shorten(n):<{NAME_WIDTH}} {commits[n]:>12.1f}/s")
    if not commits:
        lines.append("  (no commit counters moved this window)")

    lines.append("aborts")
    peak = max(aborts.values(), default=0.0)
    for n in sorted(aborts, key=aborts.get, reverse=True):
        bar = "#" * int(round(aborts[n] / peak * BAR_WIDTH)) if peak else ""
        lines.append(f"  {shorten(n):<{NAME_WIDTH}} {aborts[n]:>12.1f}/s  "
                     f"{bar}")
    if not aborts:
        lines.append("  (none this window)")

    if versions:
        # Multiversion engines: install and GC rates side by side; a GC
        # rate persistently below the install rate means chains are
        # growing (check the live_versions gauge below).
        lines.append("versions")
        for n in sorted(versions):
            lines.append(f"  {shorten(n):<{NAME_WIDTH}} "
                         f"{versions[n]:>12.1f}/s")

    gauges = w.get("gauges", {})
    if adaptive or any(n.startswith("engine.adaptive.") for n in gauges):
        # Closed-loop admission controller: the current actuator settings
        # (batch width and active k) plus this window's decision rates.
        # Sustained grow AND shrink traffic in the same frame is churn -
        # the same signal tools/metrics_diff.py flags across runs.
        lines.append("adaptive admission")
        batch = gauges.get("engine.adaptive.batch_size")
        k = gauges.get("engine.adaptive.k")
        singular = {"grows": "grow", "shrinks": "shrink",
                    "k_switches": "k_switch"}
        moved = {n.rsplit(".", 1)[-1]: r for n, r in adaptive.items() if r}
        last = (singular.get(max(moved, key=moved.get),
                             max(moved, key=moved.get))
                if moved else "none this window")
        if batch is not None or k is not None:
            lines.append(f"  batch={'?' if batch is None else batch} "
                         f"active_k={'?' if k is None else k}  "
                         f"last action: {last}")
        for n in sorted(adaptive, key=adaptive.get, reverse=True):
            lines.append(f"  {shorten(n):<{NAME_WIDTH}} "
                         f"{adaptive[n]:>12.1f}/s")
        if not adaptive:
            lines.append("  (no decisions this window)")

    if other:
        lines.append("other rates")
        for n in sorted(other, key=other.get, reverse=True)[:8]:
            lines.append(f"  {shorten(n):<{NAME_WIDTH}} {other[n]:>12.1f}/s")

    # Distributed pane: always drawn so an engine-only exporter reads as
    # "dist metrics absent" rather than as a silently missing pane.
    lines.append("distributed (dmt)")
    if dist:
        for n in sorted(dist, key=dist.get, reverse=True)[:8]:
            lines.append(f"  {shorten(n):<{NAME_WIDTH}} {dist[n]:>12.1f}/s")
    elif any(n.startswith("dmt.") for n in rates):
        lines.append("  (dmt counters idle this window)")
    else:
        lines.append("  (no dist metrics: engine-only exporter)")

    if gauges:
        lines.append("gauges")
        for n in sorted(gauges):
            flag = ("  ALERT" if n.startswith("obs.starvation_alert.")
                    and gauges[n] else "")
            lines.append(f"  {shorten(n):<{NAME_WIDTH}} {gauges[n]:>12}"
                         f"{flag}")

    hists = w.get("histograms", {})
    if hists:
        lines.append("latency (this window)")
        for n in sorted(hists):
            h = hists[n]
            lines.append(f"  {shorten(n):<{NAME_WIDTH}} "
                         f"n={h.get('count', 0)} p50={h.get('p50', 0)} "
                         f"p99={h.get('p99', 0)}")

    if phases:
        render_phases(phases, lines)

    if paths:
        render_paths(paths, lines)

    if alerts:
        lines.append("alerts (latest first)")
        for a in list(reversed(alerts))[:5]:
            lines.append(f"  {json.dumps(a)}")
    return "\n".join(lines) + "\n"


def main():
    parser = argparse.ArgumentParser(
        description="Terminal view of the live telemetry exporter.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9464)
    parser.add_argument("--interval", type=float, default=1.0,
                        help="poll interval in seconds (default 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="print one frame and exit (no screen clears)")
    args = parser.parse_args()

    endpoint = f"{args.host}:{args.port}"
    url = f"http://{endpoint}/series.json"
    phases_url = f"http://{endpoint}/phases.json"
    paths_url = f"http://{endpoint}/paths.json"
    try:
        while True:
            try:
                series = fetch(url, timeout=2.0)
            except (urllib.error.URLError, OSError, TimeoutError,
                    json.JSONDecodeError) as e:
                print(f"mdtop: cannot fetch {url}: {e}", file=sys.stderr)
                return 1
            try:
                # Best-effort: the pane is empty when the run carries no
                # metrics registry or predates the phase timers.
                phases = fetch(phases_url, timeout=2.0).get("phases", {})
            except (urllib.error.URLError, OSError, TimeoutError,
                    json.JSONDecodeError):
                phases = {}
            try:
                # Best-effort: empty unless a PathCollector is attached
                # (fault_sweep --serve with tracing on).
                paths = fetch(paths_url, timeout=2.0)
            except (urllib.error.URLError, OSError, TimeoutError,
                    json.JSONDecodeError):
                paths = {}
            frame = render(series, endpoint, phases, paths)
            if args.once:
                sys.stdout.write(frame)
                return 0
            sys.stdout.write(CLEAR + frame)
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
