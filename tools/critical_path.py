#!/usr/bin/env python3
"""Offline audit + renderer for DMT(k) distributed critical-path dumps.

Usage:
    tools/critical_path.py DUMP.json [--top N] [--verbose]

The dump is the JSON written by `fault_sweep --paths=...` ({"cells": [...]}
with one PathCollector snapshot per sweep cell) or a single collector
snapshot as served on /paths.json. Each retained transaction carries its
full span DAG: segment spans (children of the root) that tile the
transaction's timeline across the classes network / lock_wait / backoff /
site_down_retry / processing, and message-hop spans (children of the
segment open at SEND time) recorded at the receiving site.

Checked invariants:

  1. Span DAG shape: span ids are unique, every segment span's parent is
     the transaction's root, every hop's parent is a segment span of the
     same transaction that COVERS it (parent.start <= hop.start and
     hop.end <= parent.end) - and a hop's send happens-before its receive
     (start <= end). Simulated time makes these exact, not approximate.

  2. Critical-path reconciliation: the segment spans tile
     [start_us, end_us] with no gaps or overlaps, so the per-class sums -
     both recomputed from the spans and as the dump's critical_path_us
     map - telescope to exactly the end-to-end latency. Everything is in
     integer simulated microseconds, so "within rounding" means equal.

  3. Definition-6 vector order: within one incarnation the MT(k) vector
     only gains defined positions (Definition 6 refines the order
     monotonically), so a transaction's hops, in send order, must carry a
     non-decreasing defined count per incarnation. Across committed
     transactions of a cell, two fully-defined final vectors must never be
     identical (Definition 6 would call the transactions the same).

  4. Aggregates sanity: a cell never retains more paths than its collector
     saw or than its top_n allows, retained paths are sorted slowest
     first, and committed never exceeds paths.

Exits 0 when every check passes, 1 on violations, 2 on bad input.

Standard library only; no third-party dependencies.
"""

import argparse
import json
import sys

UNDEFINED = "*"  # Rendering of kUndefinedElement in the dump.
SEGMENTS = ["network", "lock_wait", "backoff", "site_down_retry",
            "processing"]
BAR = {"network": "N", "lock_wait": "L", "backoff": "b",
       "site_down_retry": "D", "processing": "p"}


def load(path):
    try:
        with open(path) as f:
            dump = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"critical_path: cannot read {path}: {e}")
    if isinstance(dump, dict) and "cells" in dump:
        cells = dump["cells"]
    elif isinstance(dump, dict) and "txns" in dump:
        # A bare /paths.json collector snapshot: treat as one cell.
        cells = [{"cell": {"scenario": "live"}, "paths": dump}]
    else:
        sys.exit(f"critical_path: {path}: not a critical-path dump")
    for c in cells:
        if "paths" not in c or "txns" not in c["paths"]:
            sys.exit(f"critical_path: {path}: malformed cell entry")
    return cells


def cell_name(cell):
    meta = cell.get("cell", {})
    name = str(meta.get("scenario", "?"))
    for key in ("loss", "crash", "k"):
        if key in meta:
            name += f" {key}={meta[key]}"
    return name


def check_txn(name, t, violations):
    txn = t.get("txn")
    where = f"{name}: T{txn}"
    spans = t.get("spans", [])
    ids = [s["id"] for s in spans]
    if len(ids) != len(set(ids)):
        violations.append(f"{where}: duplicate span ids")
    segs = sorted((s for s in spans if not s["hop"]),
                  key=lambda s: (s["start_us"], s["id"]))
    hops = sorted((s for s in spans if s["hop"]),
                  key=lambda s: (s["start_us"], s["id"]))
    root = t.get("root")

    # 1. DAG shape.
    by_id = {s["id"]: s for s in segs}
    for s in segs:
        if s["parent"] != root:
            violations.append(
                f"{where}: segment span {s['id']} has parent "
                f"{s['parent']}, expected the root {root}")
        if s["end_us"] < s["start_us"]:
            violations.append(f"{where}: segment span {s['id']} ends "
                              f"before it starts")
    for h in hops:
        if h["start_us"] > h["end_us"]:
            violations.append(
                f"{where}: hop {h['id']} receive at {h['end_us']} precedes "
                f"its send at {h['start_us']}")
        parent = by_id.get(h["parent"])
        if parent is None:
            violations.append(
                f"{where}: hop {h['id']} parent {h['parent']} is not a "
                f"segment span of the transaction")
        elif not (parent["start_us"] <= h["start_us"]
                  and h["end_us"] <= parent["end_us"]):
            violations.append(
                f"{where}: hop {h['id']} [{h['start_us']}, {h['end_us']}] "
                f"escapes its parent segment [{parent['start_us']}, "
                f"{parent['end_us']}]")

    # 2. Tiling + reconciliation (integer simulated us: exact equality).
    if segs:
        if segs[0]["start_us"] != t["start_us"]:
            violations.append(
                f"{where}: first segment starts at {segs[0]['start_us']}, "
                f"transaction at {t['start_us']}")
        if segs[-1]["end_us"] != t["end_us"]:
            violations.append(
                f"{where}: last segment ends at {segs[-1]['end_us']}, "
                f"transaction at {t['end_us']}")
        for a, b in zip(segs, segs[1:]):
            if a["end_us"] != b["start_us"]:
                violations.append(
                    f"{where}: segments {a['id']} and {b['id']} do not "
                    f"tile ({a['end_us']} vs {b['start_us']})")
    else:
        violations.append(f"{where}: no segment spans")
    recomputed = {c: 0 for c in SEGMENTS}
    for s in segs:
        recomputed.setdefault(s["class"], 0)
        recomputed[s["class"]] += s["end_us"] - s["start_us"]
    claimed = t.get("critical_path_us", {})
    for c in SEGMENTS:
        if recomputed.get(c, 0) != int(claimed.get(c, 0)):
            violations.append(
                f"{where}: class '{c}' sums to {recomputed.get(c, 0)} from "
                f"the spans but critical_path_us claims {claimed.get(c, 0)}")
    latency = t["end_us"] - t["start_us"]
    if latency != t.get("latency_us"):
        violations.append(f"{where}: latency_us {t.get('latency_us')} != "
                          f"end - start = {latency}")
    if sum(recomputed.values()) != latency:
        violations.append(
            f"{where}: segment sums total {sum(recomputed.values())} us, "
            f"end-to-end latency is {latency} us")

    # 3. Definition-6 monotonicity over the hops, per incarnation.
    last = {}
    for h in hops:
        inc = h.get("incarnation", 0)
        if h["defined"] < last.get(inc, 0):
            violations.append(
                f"{where}: hop {h['id']} (incarnation {inc}) carries "
                f"defined={h['defined']} after an earlier hop carried "
                f"{last[inc]} - the vector lost definedness")
        last[inc] = max(last.get(inc, 0), h["defined"])
    return len(segs), len(hops)


def check_cell(cell, violations, verbose):
    name = cell_name(cell)
    paths = cell["paths"]
    txns = paths.get("txns", [])
    meta = paths.get("meta", {})
    agg = paths.get("aggregates", {})

    # 4. Aggregates sanity.
    if len(txns) > int(meta.get("top_n", len(txns))):
        violations.append(f"{name}: retains {len(txns)} paths, top_n is "
                          f"{meta.get('top_n')}")
    if len(txns) > int(agg.get("paths", 0)):
        violations.append(f"{name}: retains {len(txns)} paths, aggregates "
                          f"saw only {agg.get('paths')}")
    if int(agg.get("committed", 0)) > int(agg.get("paths", 0)):
        violations.append(f"{name}: committed exceeds extracted paths")
    latencies = [t.get("latency_us", 0) for t in txns]
    if latencies != sorted(latencies, reverse=True):
        violations.append(f"{name}: retained paths are not sorted "
                          f"slowest-first")

    nseg = nhop = 0
    for t in txns:
        s, h = check_txn(name, t, violations)
        nseg += s
        nhop += h

    # Committed final vectors must be distinct when fully defined.
    seen = {}
    for t in txns:
        if not t.get("committed"):
            continue
        vec = tuple(t.get("vec", []))
        if not vec or UNDEFINED in vec or len(vec) < int(t.get("k", 0)):
            continue  # Partially defined or truncated: not comparable.
        if vec in seen and seen[vec] != t["txn"]:
            violations.append(
                f"{name}: committed T{seen[vec]} and T{t['txn']} share the "
                f"identical fully-defined vector {list(vec)}")
        seen[vec] = t["txn"]
    if verbose:
        print(f"  {name}: {len(txns)} paths retained "
              f"({agg.get('paths', 0)} extracted), {nseg} segment spans, "
              f"{nhop} hops")
    return txns


def render(all_txns, top):
    print(f"\ntop {min(top, len(all_txns))} slowest transactions "
          f"(bar: {', '.join(f'{v}={k}' for k, v in BAR.items())}):")
    width = 44
    for name, t in sorted(all_txns, key=lambda e: -e[1]["latency_us"])[:top]:
        latency = max(t["latency_us"], 1)
        bar = ""
        for c in SEGMENTS:
            cells = round(int(t["critical_path_us"].get(c, 0))
                          * width / latency)
            bar += BAR[c] * cells
        state = "committed" if t.get("committed") else "GAVE UP"
        hops = sum(1 for s in t.get("spans", []) if s["hop"])
        print(f"  T{t['txn']:<4} {t['latency_us']:>9} us  "
              f"{bar:<{width}.{width}}  {state}, "
              f"{t.get('attempts', '?')} attempt(s), {hops} hops  [{name}]")
        shares = ", ".join(
            f"{c} {100.0 * int(t['critical_path_us'].get(c, 0)) / latency:.0f}%"
            for c in SEGMENTS if int(t["critical_path_us"].get(c, 0)) > 0)
        print(f"        {shares}")


def main():
    parser = argparse.ArgumentParser(
        description="Audit and render a DMT(k) critical-path dump.")
    parser.add_argument("dump")
    parser.add_argument("--top", type=int, default=5,
                        help="slowest transactions to render (default 5)")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-cell statistics")
    args = parser.parse_args()

    cells = load(args.dump)
    total_paths = sum(int(c["paths"].get("aggregates", {}).get("paths", 0))
                      for c in cells)
    print(f"critical-path dump: {len(cells)} cell(s), "
          f"{total_paths} extracted paths")

    violations = []
    all_txns = []
    for cell in cells:
        for t in check_cell(cell, violations, args.verbose):
            all_txns.append((cell_name(cell), t))

    if violations:
        print(f"FAIL: {len(violations)} violation(s)")
        for v in violations:
            print(f"  {v}")
        return 1
    if all_txns and args.top > 0:
        render(all_txns, args.top)
    print("ok: every span DAG is vector-order-consistent and every "
          "critical path reconciles exactly with its end-to-end latency")
    return 0


if __name__ == "__main__":
    sys.exit(main())
