#!/usr/bin/env python3
"""Offline vector-clock audit of a FlightRecorder dump.

Usage:
    tools/flight_check.py DUMP.json [--verbose]

The dump is the JSON written by FlightRecorder::DumpToFile (or served on
/flight.json): ring metadata, lifetime totals, and the last-N commit/abort
records, each carrying the transaction's timestamp vector at that moment.

What is checked - and, importantly, what is NOT. In MT(k) the commit
wall-clock order deliberately does NOT match the vector order (late
ordering is the whole point of the protocol), so the audit never compares
timestamps against vector positions. The sound invariants are:

  1. Record integrity: sequence numbers are unique, vectors have at most
     their declared k elements, phase breakdowns appear only on records
     whose commit sampled them, and every abort carries a real reason.
     A kVersionConflict blocker MAY be 0: a write refused on writer order
     alone (or by a whole version chain) has no single fixing transaction.

  2. Vector consistency of committed writers: two commit records that
     share a written item are ordered writers of that item, so their
     vectors must not be identical-and-fully-defined (Definition 6 would
     call the transactions the same), and when the Definition-6 partial
     order CAN compare them, the raw lexicographic order (undefined = -inf,
     the refinement WAL recovery sorts by) must agree with it.

  3. Totals reconciliation: the per-reason abort counts derived from the
     ring contents never exceed the recorder's lifetime AbortReasonCounts,
     the per-reason lifetime counts sum to the lifetime abort total, and
     the ring never holds more commits/aborts than the totals claim.

Exits 0 when every check passes, 1 on violations, 2 on bad input.

Standard library only; no third-party dependencies.
"""

import argparse
import json
import sys

UNDEFINED = "*"  # Rendering of kUndefinedElement in the dump.


def load(path):
    try:
        with open(path) as f:
            dump = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"flight_check: cannot read {path}: {e}")
    if not isinstance(dump, dict) or "records" not in dump:
        sys.exit(f"flight_check: {path}: not a flight recorder dump")
    return dump


def def6_compare(a, b):
    """Definition-6 partial order over two rendered vectors.

    Returns "less", "greater", "identical" (equal on common positions and
    both fully defined), or "undetermined". Positions where either side is
    undefined are skipped; the first common-defined differing position
    decides.
    """
    n = min(len(a), len(b))
    for p in range(n):
        if a[p] == UNDEFINED or b[p] == UNDEFINED:
            continue
        if a[p] < b[p]:
            return "less"
        if a[p] > b[p]:
            return "greater"
    if UNDEFINED in a or UNDEFINED in b or len(a) != len(b):
        return "undetermined"
    return "identical"


def raw_lex_compare(a, b):
    """Total order refinement: lexicographic with undefined = -infinity
    (what ParallelWal::Recover sorts recovered commits by)."""
    n = max(len(a), len(b))
    for p in range(n):
        av = a[p] if p < len(a) else UNDEFINED
        bv = b[p] if p < len(b) else UNDEFINED
        ka = (0,) if av == UNDEFINED else (1, av)
        kb = (0,) if bv == UNDEFINED else (1, bv)
        if ka < kb:
            return "less"
        if ka > kb:
            return "greater"
    return "equal"


def check_integrity(records, violations):
    seen_seq = {}
    for r in records:
        seq = r.get("seq")
        if seq in seen_seq:
            violations.append(
                f"duplicate seq {seq} (records for T{seen_seq[seq]} and "
                f"T{r.get('txn')})")
        else:
            seen_seq[seq] = r.get("txn")
        vec = r.get("vec", [])
        k = r.get("k", len(vec))
        if len(vec) != k:
            violations.append(
                f"seq {seq}: vector has {len(vec)} elements, record "
                f"declares k={k}")
        if r.get("event") == "abort":
            if not r.get("reason"):
                violations.append(f"seq {seq}: abort without a reason")
            if "phases" in r:
                violations.append(
                    f"seq {seq}: abort carries a phase breakdown "
                    f"(only sampled commits do)")
        elif r.get("event") != "commit":
            violations.append(f"seq {seq}: unknown event "
                              f"{r.get('event')!r}")


def check_writer_vectors(records, violations, verbose):
    """Pairwise Definition-6 audit of commit records sharing a written
    item. Undetermined pairs are fine (the protocol orders lazily); the
    violations are identical fully-defined vectors and a comparable pair
    whose raw lexicographic refinement disagrees."""
    by_item = {}
    for r in records:
        if r.get("event") != "commit":
            continue
        for item in r.get("writes", []):
            by_item.setdefault(item, []).append(r)
    pairs = comparable = 0
    for item, writers in sorted(by_item.items()):
        for i in range(len(writers)):
            for j in range(i + 1, len(writers)):
                a, b = writers[i], writers[j]
                if a.get("txn") == b.get("txn"):
                    continue  # Same transaction, later incarnation/cell.
                pairs += 1
                order = def6_compare(a["vec"], b["vec"])
                if order == "identical":
                    violations.append(
                        f"item {item}: committed writers T{a['txn']} "
                        f"(seq {a['seq']}) and T{b['txn']} (seq {b['seq']}) "
                        f"have identical fully-defined vectors {a['vec']}")
                    continue
                if order == "undetermined":
                    continue
                comparable += 1
                raw = raw_lex_compare(a["vec"], b["vec"])
                if raw != order:
                    violations.append(
                        f"item {item}: T{a['txn']} vs T{b['txn']} is "
                        f"'{order}' under Definition 6 but '{raw}' under "
                        f"the raw lexicographic refinement "
                        f"({a['vec']} vs {b['vec']})")
    if verbose:
        print(f"  writer-pair audit: {pairs} pairs sharing an item, "
              f"{comparable} Definition-6 comparable")


def check_totals(dump, records, violations, verbose):
    totals = dump.get("totals", {})
    lifetime_reasons = totals.get("abort_reasons", {})
    lifetime_aborts = int(totals.get("aborts", 0))
    lifetime_commits = int(totals.get("commits", 0))

    ring_reasons = {}
    ring_commits = ring_aborts = 0
    for r in records:
        if r.get("event") == "commit":
            ring_commits += 1
        else:
            ring_aborts += 1
            reason = r.get("reason", "?")
            ring_reasons[reason] = ring_reasons.get(reason, 0) + 1

    if sum(lifetime_reasons.values()) != lifetime_aborts:
        violations.append(
            f"lifetime abort reasons sum to "
            f"{sum(lifetime_reasons.values())}, totals claim "
            f"{lifetime_aborts}")
    if ring_commits > lifetime_commits:
        violations.append(
            f"ring holds {ring_commits} commits, totals claim only "
            f"{lifetime_commits}")
    if ring_aborts > lifetime_aborts:
        violations.append(
            f"ring holds {ring_aborts} aborts, totals claim only "
            f"{lifetime_aborts}")
    for reason, n in sorted(ring_reasons.items()):
        if n > int(lifetime_reasons.get(reason, 0)):
            violations.append(
                f"ring holds {n} '{reason}' aborts, lifetime count is "
                f"{lifetime_reasons.get(reason, 0)}")
    if verbose:
        print(f"  totals: ring {ring_commits} commits / {ring_aborts} "
              f"aborts; lifetime {lifetime_commits} / {lifetime_aborts}")


def main():
    parser = argparse.ArgumentParser(
        description="Audit a FlightRecorder JSON dump.")
    parser.add_argument("dump")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-check statistics")
    args = parser.parse_args()

    dump = load(args.dump)
    records = dump.get("records", [])
    meta = dump.get("meta", {})
    print(f"flight dump: {len(records)} records "
          f"({meta.get('rings', '?')} rings x "
          f"{meta.get('capacity', '?')} slots, k={meta.get('k', '?')})")

    violations = []
    check_integrity(records, violations)
    check_writer_vectors(records, violations, args.verbose)
    check_totals(dump, records, violations, args.verbose)

    if violations:
        print(f"FAIL: {len(violations)} violation(s)")
        for v in violations:
            print(f"  {v}")
        return 1
    print("ok: commit order is vector-consistent and the abort records "
          "reconcile with the lifetime counts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
