#!/usr/bin/env python3
"""Diff two metrics snapshots written by MetricsSnapshot::WriteJsonFile.

Usage:
    tools/metrics_diff.py BEFORE.json AFTER.json [--all]

Prints one line per counter whose value changed (name, before, after,
delta) and one per histogram whose count changed (count/sum deltas and the
after-side p50/p99). With --all, unchanged entries are listed too. Exits 0
when the snapshots are identical, 1 when anything differs, 2 on bad input.

Standard library only; no third-party dependencies.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            snap = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"metrics_diff: cannot read {path}: {e}")
    if not isinstance(snap, dict):
        sys.exit(f"metrics_diff: {path}: not a metrics snapshot object")
    return snap.get("counters", {}), snap.get("histograms", {})


def fmt_delta(delta):
    return f"{delta:+d}" if delta else "="


def main():
    parser = argparse.ArgumentParser(
        description="Diff two MetricsSnapshot JSON files.")
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument("--all", action="store_true",
                        help="also list unchanged metrics")
    args = parser.parse_args()

    counters_a, hists_a = load(args.before)
    counters_b, hists_b = load(args.after)

    changed = 0
    rows = []
    for name in sorted(set(counters_a) | set(counters_b)):
        before = int(counters_a.get(name, 0))
        after = int(counters_b.get(name, 0))
        if before != after:
            changed += 1
        if before != after or args.all:
            rows.append((name, str(before), str(after),
                         fmt_delta(after - before)))
    if rows:
        widths = [max(len(r[i]) for r in rows) for i in range(4)]
        for name, before, after, delta in rows:
            print(f"{name:<{widths[0]}}  {before:>{widths[1]}} -> "
                  f"{after:>{widths[2]}}  {delta:>{widths[3]}}")

    for name in sorted(set(hists_a) | set(hists_b)):
        ha = hists_a.get(name, {})
        hb = hists_b.get(name, {})
        dcount = int(hb.get("count", 0)) - int(ha.get("count", 0))
        dsum = int(hb.get("sum", 0)) - int(ha.get("sum", 0))
        if dcount == 0 and dsum == 0 and not args.all:
            continue
        if dcount != 0 or dsum != 0:
            changed += 1
        print(f"{name}  count{fmt_delta(dcount)} sum{fmt_delta(dsum)} "
              f"(after: p50={hb.get('p50', '?')} p99={hb.get('p99', '?')})")

    if changed == 0:
        print("snapshots identical"
              + ("" if args.all else " (use --all to list entries)"))
    return 1 if changed else 0


if __name__ == "__main__":
    sys.exit(main())
