#!/usr/bin/env python3
"""Diff two metrics snapshots written by MetricsSnapshot::WriteJsonFile.

Usage:
    tools/metrics_diff.py BEFORE.json AFTER.json [--all] [--tolerance=N]

Prints one line per counter or gauge whose value changed (name, before,
after, delta) and a block per histogram whose count changed: count/sum
deltas, the per-bucket count deltas, and the p50/p99 DERIVED FROM THE
DELTA distribution - the percentiles of just the events recorded between
the two snapshots, mirroring HistogramSnapshot::Percentile (power-of-two
buckets, bucket b covering values up to 2^b - 1, clamped by the after-side
max). The per-phase regression check flags any "engine.phase.*_us" or
"dmt.path.*_us" histogram whose full-distribution p99 rose by more than
the tolerance. The controller-oscillation check flags adaptive-admission
churn between the snapshots: every grow paired with a shrink is one
reversal of the batch actuator, and more than --churn reversals (or more
than 2x --churn active-k switches) means the controller is hunting
instead of converging. With --all, unchanged entries are listed too.
--tolerance=N treats absolute deltas up to N as unchanged (useful when
comparing runs with small nondeterministic counters, e.g. retry or
lock-wait tallies).

Exits 0 when the snapshots match (within tolerance), 1 when anything
differs, 2 on bad input.

Standard library only; no third-party dependencies.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            snap = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"metrics_diff: cannot read {path}: {e}")
    if not isinstance(snap, dict):
        sys.exit(f"metrics_diff: {path}: not a metrics snapshot object")
    return (snap.get("counters", {}), snap.get("gauges", {}),
            snap.get("histograms", {}))


def fmt_delta(delta):
    return f"{delta:+d}" if delta else "="


def bucket_deltas(before, after):
    """Per-bucket count deltas {bucket_index: delta}, zeros omitted."""
    ba = {int(k): int(v) for k, v in before.get("buckets", {}).items()}
    bb = {int(k): int(v) for k, v in after.get("buckets", {}).items()}
    out = {}
    for b in sorted(set(ba) | set(bb)):
        d = bb.get(b, 0) - ba.get(b, 0)
        if d:
            out[b] = d
    return out


def delta_percentile(deltas, p, max_clamp):
    """Percentile of the delta distribution, as HistogramSnapshot does it:
    walk cumulative bucket counts, report bucket b's upper bound 2^b - 1
    (bucket 0 holds exactly the value 0), clamped by the observed max."""
    total = sum(deltas.values())
    if total <= 0:
        return 0
    target = total * p / 100.0
    cumulative = 0
    for b in sorted(deltas):
        cumulative += deltas[b]
        if cumulative >= target and cumulative > 0:
            if b == 0:
                return 0
            upper = (1 << 64) - 1 if b >= 64 else (1 << b) - 1
            return min(upper, max_clamp) if max_clamp else upper
    return max_clamp


def full_percentile(hist, p):
    """Percentile of one snapshot's full histogram distribution (not the
    delta window): the comparison basis for the per-phase regression
    check, where before/after are usually two independent runs."""
    buckets = {int(k): int(v) for k, v in hist.get("buckets", {}).items()}
    return delta_percentile(buckets, p, int(hist.get("max", 0)))


def presence_note(name, section_a, section_b):
    """Annotation for a metric present in only one snapshot: a registry
    grows instruments lazily (e.g. wal.* only appears once a WAL is
    attached), so one-sided entries are expected, not an error; the
    missing side reads as 0."""
    if name not in section_a:
        return "  (added)"
    if name not in section_b:
        return "  (removed)"
    return ""


def diff_scalars(section_a, section_b, tolerance, list_all, rows):
    """Shared counter/gauge diff; returns the number of changed entries."""
    changed = 0
    for name in sorted(set(section_a) | set(section_b)):
        before = int(section_a.get(name, 0))
        after = int(section_b.get(name, 0))
        delta = after - before
        if abs(delta) > tolerance:
            changed += 1
        if delta != 0 or list_all:
            rows.append((name, str(before), str(after), fmt_delta(delta),
                         presence_note(name, section_a, section_b)))
    return changed


def main():
    parser = argparse.ArgumentParser(
        description="Diff two MetricsSnapshot JSON files.")
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument("--all", action="store_true",
                        help="also list unchanged metrics")
    parser.add_argument("--tolerance", type=int, default=0, metavar="N",
                        help="treat absolute deltas up to N as unchanged "
                             "(default 0: exact)")
    parser.add_argument("--churn", type=int, default=4, metavar="N",
                        help="adaptive-admission oscillation threshold: "
                             "flag more than N grow/shrink reversals (or "
                             "2xN k switches) between the snapshots "
                             "(default 4)")
    args = parser.parse_args()
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")
    if args.churn < 0:
        parser.error("--churn must be >= 0")

    counters_a, gauges_a, hists_a = load(args.before)
    counters_b, gauges_b, hists_b = load(args.after)

    changed = 0
    rows = []
    changed += diff_scalars(counters_a, counters_b, args.tolerance,
                            args.all, rows)
    gauge_start = len(rows)
    changed += diff_scalars(gauges_a, gauges_b, args.tolerance,
                            args.all, rows)
    if rows:
        widths = [max(len(r[i]) for r in rows) for i in range(4)]
        for i, (name, before, after, delta, note) in enumerate(rows):
            kind = "gauge  " if i >= gauge_start else "counter"
            print(f"{kind} {name:<{widths[0]}}  {before:>{widths[1]}} -> "
                  f"{after:>{widths[2]}}  {delta:>{widths[3]}}{note}")

    for name in sorted(set(hists_a) | set(hists_b)):
        ha = hists_a.get(name, {})
        hb = hists_b.get(name, {})
        dcount = int(hb.get("count", 0)) - int(ha.get("count", 0))
        dsum = int(hb.get("sum", 0)) - int(ha.get("sum", 0))
        if dcount == 0 and dsum == 0 and not args.all:
            continue
        if abs(dcount) > args.tolerance or abs(dsum) > args.tolerance:
            changed += 1
        deltas = bucket_deltas(ha, hb)
        max_clamp = int(hb.get("max", 0))
        p50 = delta_percentile(deltas, 50, max_clamp)
        p99 = delta_percentile(deltas, 99, max_clamp)
        note = presence_note(name, hists_a, hists_b)
        print(f"histogram {name}  count{fmt_delta(dcount)} "
              f"sum{fmt_delta(dsum)} (delta window: p50={p50} p99={p99})"
              f"{note}")
        for b in sorted(deltas):
            upper = "0" if b == 0 else f"<=2^{b}-1"
            print(f"  bucket[{b}] ({upper}): {fmt_delta(deltas[b])}")

    # Per-phase latency attribution: the "engine.phase.*_us" histogram
    # family holds per-transaction phase latencies in microseconds
    # (admission / lock / decide / mv_read / wal_append / fsync / ack),
    # and "dmt.path.*_us" holds the distributed critical-path segment
    # classes (network / lock_wait / backoff / site_down_retry /
    # processing) in simulated microseconds. A phase or segment whose p99
    # moved up by more than the tolerance is flagged as a regression and
    # fails the diff - CI's one-line answer to "which phase got slower
    # between these two runs".
    for name in sorted(set(hists_a) & set(hists_b)):
        if not (name.startswith("engine.phase.")
                or name.startswith("dmt.path.")):
            continue
        pa = full_percentile(hists_a[name], 99)
        pb = full_percentile(hists_b[name], 99)
        if pb > pa + args.tolerance:
            changed += 1
            print(f"phase regression {name}: p99 {pa} -> {pb} us "
                  f"(+{pb - pa}"
                  + (f", tolerance {args.tolerance}" if args.tolerance
                     else "")
                  + ")")

    # Controller-oscillation flag: between the snapshots, every grow that
    # is paired with a shrink is one reversal of the batch actuator - a
    # controller tracking a genuine phase change makes a few, one hunting
    # around a threshold makes many. Same idea for the active-k actuator,
    # where widen/narrow both land in engine.adaptive.k_switches (so a
    # full adapt-and-recover cycle costs 2). Modeled on the phase p99
    # regression check above: crossing the threshold fails the diff.
    d_grows = (int(counters_b.get("engine.adaptive.grows", 0))
               - int(counters_a.get("engine.adaptive.grows", 0)))
    d_shrinks = (int(counters_b.get("engine.adaptive.shrinks", 0))
                 - int(counters_a.get("engine.adaptive.shrinks", 0)))
    d_kswitch = (int(counters_b.get("engine.adaptive.k_switches", 0))
                 - int(counters_a.get("engine.adaptive.k_switches", 0)))
    reversals = min(max(d_grows, 0), max(d_shrinks, 0))
    if reversals > args.churn:
        changed += 1
        print(f"controller oscillation: {reversals} grow/shrink reversals "
              f"(+{d_grows} grows, +{d_shrinks} shrinks; churn threshold "
              f"{args.churn})")
    if d_kswitch > 2 * args.churn:
        changed += 1
        print(f"controller oscillation: {d_kswitch} active-k switches "
              f"(churn threshold {2 * args.churn})")

    # Multiversion bookkeeping lint: when a snapshot carries the
    # version-chain series, the live-version gauge should equal installs
    # minus reclaims. A drained snapshot (taken after EngineStats, which
    # flushes every mirror buffer) must satisfy it exactly; one taken
    # mid-run can lag by the buffered counter deltas, so this is a warning
    # and does not affect the exit code.
    for label, counters, gauges in (("before", counters_a, gauges_a),
                                    ("after", counters_b, gauges_b)):
        if "engine.versions_installed" not in counters:
            continue
        installed = int(counters.get("engine.versions_installed", 0))
        gc = int(counters.get("engine.versions_gc", 0))
        live = int(gauges.get("engine.live_versions", 0))
        if live != installed - gc:
            print(f"warning ({label}): engine.live_versions={live} != "
                  f"versions_installed={installed} - versions_gc={gc} "
                  f"(= {installed - gc}; consistent only in drained "
                  f"snapshots - buffered mirror deltas lag mid-run)")

    if changed == 0:
        print("snapshots match"
              + (f" within tolerance {args.tolerance}"
                 if args.tolerance else "")
              + ("" if args.all else " (use --all to list entries)"))
    return 1 if changed else 0


if __name__ == "__main__":
    sys.exit(main())
