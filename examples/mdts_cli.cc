// mdts_cli: drive any scheduler in the library over a log from the command
// line or stdin - the tool a downstream user reaches for first.
//
// Usage:
//   mdts_cli [--scheduler=NAME] [--k=K] ["LOG TEXT"]
//
//   NAME: mt (default) | mt+ | mv | 2pl | to1 | occ | interval | nested
//   K:    vector size for mt/mt+/mv (default 3)
//
// With no log argument, reads one log per line from stdin. Logs use the
// paper's notation: "W1[x] R2[y] W2(x) ...".
//
// Examples:
//   $ ./build/examples/mdts_cli "W1[x] W1[y] R3[x] R2[y] W3[y]"
//   $ ./build/examples/mdts_cli --scheduler=2pl "R1[x] W2[x] W3[y] W1[y]"
//   $ echo "R1[x] W2[x]" | ./build/examples/mdts_cli --scheduler=mv --k=2

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "composite/mtk_plus.h"
#include "core/explain.h"
#include "core/log.h"
#include "mvcc/mv_online.h"
#include "sched/interval_scheduler.h"
#include "sched/mtk_online.h"
#include "sched/occ_scheduler.h"
#include "sched/to1_scheduler.h"
#include "sched/two_pl_scheduler.h"

using namespace mdts;

namespace {

struct Cli {
  std::string scheduler = "mt";
  size_t k = 3;
  bool explain = false;
};

int RunLog(const Cli& cli, const std::string& text) {
  auto parsed = Log::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  const Log& log = parsed.value();
  std::printf("log: %s\n", log.ToString().c_str());

  if (cli.explain) {
    MtkOptions o;
    o.k = cli.k;
    std::printf("%s", ExplainRejection(log, o).ToString().c_str());
    return 0;
  }

  if (cli.scheduler == "mt+") {
    MtkPlus composite(cli.k);
    for (const Op& op : log.ops()) {
      const OpDecision d = composite.Process(op);
      std::printf("  %-8s -> %s  (live subprotocols: %zu)\n",
                  OpName(op).c_str(), OpDecisionName(d),
                  composite.live_count());
    }
    std::printf("%s", composite.DumpTables(log.num_txns()).c_str());
    return 0;
  }

  std::unique_ptr<Scheduler> s;
  if (cli.scheduler == "mt") {
    MtkOptions o;
    o.k = cli.k;
    s = std::make_unique<MtkOnline>(o);
  } else if (cli.scheduler == "mv") {
    MvMtkOptions o;
    o.k = cli.k;
    o.starvation_fix = true;
    s = std::make_unique<MvOnline>(o);
  } else if (cli.scheduler == "2pl") {
    s = std::make_unique<TwoPlScheduler>();
  } else if (cli.scheduler == "to1") {
    s = std::make_unique<To1Scheduler>();
  } else if (cli.scheduler == "occ") {
    s = std::make_unique<OccScheduler>();
  } else if (cli.scheduler == "interval") {
    s = std::make_unique<IntervalScheduler>();
  } else {
    std::fprintf(stderr, "unknown scheduler '%s'\n", cli.scheduler.c_str());
    return 2;
  }

  std::printf("scheduler: %s\n", s->name().c_str());
  for (const Op& op : log.ops()) {
    const SchedOutcome outcome = s->OnOperation(op);
    std::printf("  %-8s -> %s", OpName(op).c_str(),
                SchedOutcomeName(outcome));
    if (outcome == SchedOutcome::kBlocked) {
      std::printf("  (would wait; offline replay treats this as stuck)");
    }
    std::printf("\n");
    for (TxnId t : s->TakeUnblocked()) {
      std::printf("           T%u unblocked\n", t);
    }
  }
  for (TxnId t = 1; t <= log.num_txns(); ++t) {
    std::printf("  commit T%u -> %s\n", t,
                SchedOutcomeName(s->OnCommit(t)));
    for (TxnId u : s->TakeUnblocked()) {
      std::printf("           T%u unblocked\n", u);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  std::string log_text;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scheduler=", 0) == 0) {
      cli.scheduler = arg.substr(std::strlen("--scheduler="));
    } else if (arg.rfind("--k=", 0) == 0) {
      cli.k = static_cast<size_t>(std::stoul(arg.substr(4)));
    } else if (arg == "--explain") {
      cli.explain = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: mdts_cli [--scheduler=mt|mt+|mv|2pl|to1|occ|"
                  "interval] [--k=K] [--explain] [\"LOG\"]\n");
      return 0;
    } else {
      log_text = arg;
    }
  }
  if (!log_text.empty()) return RunLog(cli, log_text);
  std::string line;
  int rc = 0;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    rc |= RunLog(cli, line);
  }
  return rc;
}
