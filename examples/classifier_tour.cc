// Classifier tour: pass a log in the paper's notation and see exactly
// where it falls in the Fig. 4 hierarchy, along with its dependency
// digraph and a serialization witness.
//
//   $ ./build/examples/classifier_tour "W1[x] R2[x] W2[y] R1[y]"
//   $ ./build/examples/classifier_tour            # uses a default tour

#include <cstdio>
#include <string>
#include <vector>

#include "classify/classes.h"
#include "classify/dependency_graph.h"
#include "classify/hierarchy.h"
#include "core/log.h"
#include "core/recognizer.h"

using namespace mdts;

namespace {

void Tour(const std::string& text) {
  auto parsed = Log::Parse(text);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return;
  }
  const Log& log = parsed.value();
  std::printf("log: %s\n", log.ToString().c_str());
  std::printf("  %u transactions, %u items, q = %zu ops/txn, two-step: %s\n",
              log.num_txns(), log.num_items(), log.MaxOpsPerTxn(),
              log.IsTwoStep() ? "yes" : "no");

  DependencyGraph g = DependencyGraph::FromLog(log);
  std::printf("\ndependency digraph:\n%s", g.ToDot("log").c_str());

  std::printf("\nclass membership:\n");
  std::printf("  DSR (conflict-serializable): %s\n",
              IsDsr(log) ? "yes" : "no");
  auto order = DsrSerialOrder(log);
  if (!order.empty()) {
    std::printf("  serialization witness:");
    for (TxnId t : order) std::printf(" T%u", t);
    std::printf("\n");
  }
  for (size_t k = 1; k <= 2 * log.MaxOpsPerTxn() - 1 && k <= 9; ++k) {
    std::printf("  TO(%zu): %s\n", k, IsToK(log, k) ? "yes" : "no");
  }
  std::printf("  2PL: %s\n", IsTwoPl(log) ? "yes" : "no");
  if (log.num_txns() <= kMaxBruteForceTxns) {
    auto ssr = IsSsr(log);
    auto vsr = IsViewSerializable(log);
    auto fsr = IsFinalStateSerializable(log);
    if (ssr.ok()) std::printf("  SSR: %s\n", *ssr ? "yes" : "no");
    if (vsr.ok()) {
      std::printf("  view-serializable: %s\n", *vsr ? "yes" : "no");
    }
    if (fsr.ok()) {
      std::printf("  final-state serializable (SR): %s\n",
                  *fsr ? "yes" : "no");
    }
    auto m = ClassifyLog(log);
    if (m.ok()) {
      std::printf("  Fig. 4 signature: %s (region %d)\n",
                  MembershipSignature(*m).c_str(), Fig4Region(*m));
    }
  } else {
    std::printf("  (brute-force classes skipped: more than %u txns)\n",
                kMaxBruteForceTxns);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    Tour(argv[1]);
    return 0;
  }
  std::printf("=== classifier tour (default logs) ===\n\n");
  // One log per interesting hierarchy position.
  Tour("R1[x] W1[x] R2[x] W2[x]");               // Everything.
  Tour("W1[x] W1[y] R3[x] R2[y] W3[y]");         // TO(2) - TO(1).
  Tour("R1[x] W2[x] W3[y] W1[y]");               // DSR - 2PL.
  Tour("R2[y] R1[x] W1[y] R3[z] W2[z] W3[w]");   // DSR n SR - SSR.
  Tour("R1[x] W2[x] W1[x] W3[x]");               // VSR - DSR.
  Tour("R1[x] R2[x] W1[x] W2[x]");               // Lost update: outside SR.
  return 0;
}
