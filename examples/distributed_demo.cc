// Distributed demo: DMT(k) across three sites.
//
// Items and timestamp vectors are partitioned by id across the sites;
// scheduling an operation locks the involved objects in the predefined
// linear order (deadlock-free) and exchanges messages with their home
// sites. The demo prints the message economics and verifies the global
// history stayed serializable.
//
//   $ ./build/examples/distributed_demo

#include <cstdio>

#include "classify/classes.h"
#include "common/table_printer.h"
#include "dist/dmt_system.h"

using namespace mdts;

int main() {
  std::printf("=== distributed_demo: DMT(3) on 3 sites ===\n\n");

  DmtOptions options;
  options.k = 3;
  options.num_sites = 3;
  options.num_txns = 90;
  options.concurrency = 9;
  options.message_latency = 1.0;
  options.seed = 4242;
  options.workload.num_items = 12;
  options.workload.min_ops = 2;
  options.workload.max_ops = 4;
  options.workload.read_fraction = 0.6;

  DmtResult r = RunDmtSimulation(options);

  TablePrinter table({"metric", "value"});
  table.AddRow({"transactions committed", std::to_string(r.committed)});
  table.AddRow({"aborts", std::to_string(r.aborts)});
  table.AddRow({"operations scheduled", std::to_string(r.ops_scheduled)});
  table.AddRow({"network messages", std::to_string(r.messages_sent)});
  table.AddRow(
      {"messages per op",
       FormatDouble(r.ops_scheduled > 0
                        ? static_cast<double>(r.messages_sent) /
                              static_cast<double>(r.ops_scheduled)
                        : 0.0,
                    2)});
  table.AddRow({"lock-queue waits", std::to_string(r.lock_waits)});
  table.AddRow({"makespan (sim time)", FormatDouble(r.makespan, 1)});
  table.AddRow({"avg response time", FormatDouble(r.avg_response_time, 2)});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("per-site scheduling load:");
  for (size_t s = 0; s < r.ops_per_site.size(); ++s) {
    std::printf("  site %zu: %llu", s,
                static_cast<unsigned long long>(r.ops_per_site[s]));
  }
  std::printf("\n\nglobal committed history is DSR: %s\n",
              IsDsr(r.committed_history) ? "yes" : "NO (bug!)");
  std::printf("\nEvery operation locked at most four objects (the item\n"
              "record plus up to three timestamp vectors) in ascending\n"
              "object order, so no two operations could deadlock - the\n"
              "paper's Section V-B design.\n");

  // --- The same workload over a faulty network ---
  std::printf("\n=== rerun with injected faults: 15%% loss, jitter, one\n"
              "    mid-run site crash/recovery ===\n\n");
  options.fault.drop_rate = 0.15;
  options.fault.jitter = 0.5;
  options.fault.crashes.push_back({1, 80.0, 200.0});
  DmtResult f = RunDmtSimulation(options);

  TablePrinter faulty({"metric", "value"});
  faulty.AddRow({"transactions committed", std::to_string(f.committed)});
  faulty.AddRow({"gave up", std::to_string(f.gave_up)});
  faulty.AddRow({"aborts", std::to_string(f.aborts)});
  faulty.AddRow({"messages dropped", std::to_string(f.messages_dropped)});
  faulty.AddRow({"lock-request retries", std::to_string(f.lock_retries)});
  faulty.AddRow({"lease reclaims", std::to_string(f.lease_reclaims)});
  faulty.AddRow({"down-site aborts", std::to_string(f.down_site_aborts)});
  faulty.AddRow({"p99 response time", FormatDouble(f.p99_response_time, 2)});
  std::printf("%s\n", faulty.ToString().c_str());

  std::printf("global committed history is DSR: %s\n",
              IsDsr(f.committed_history) ? "yes" : "NO (bug!)");
  std::printf("\nLost requests were retried on a capped-exponential\n"
              "timeout, locks orphaned by the crash were reclaimed by\n"
              "lease expiry, and transactions touching the down site\n"
              "aborted and retried with backoff - the run terminates and\n"
              "the committed history stays serializable under fire.\n");
  return 0;
}
