// Nested/grouped example: order processing with MT(k1, k2).
//
// An order-processing system runs ingestion transactions (new orders) and
// fulfilment transactions (pick + ship). Per the paper's Section V-A, the
// two kinds form groups: the protocol keeps inter-group dependencies
// antisymmetric (ingestion feeds fulfilment, never the other way within an
// epoch), while transactions inside a group are serialized with their own
// timestamp vectors.
//
//   $ ./build/examples/nested_orders

#include <cstdio>

#include "core/log.h"
#include "nested/nested_scheduler.h"

using namespace mdts;

namespace {

// Items: 0-3 order slots, 4-7 inventory records.
constexpr ItemId kOrder0 = 0, kOrder1 = 1;
constexpr ItemId kStockA = 4, kStockB = 5;

constexpr GroupId kIngestion = 1;
constexpr GroupId kFulfilment = 2;

const char* Decide(NestedMtScheduler* s, const Op& op) {
  return OpDecisionName(s->Process(op));
}

}  // namespace

int main() {
  std::printf("=== nested_orders: MT(2,2) with ingestion/fulfilment groups "
              "===\n\n");
  NestedMtScheduler s({2, 2});

  // T1, T2 ingest orders; T3, T4 fulfil them.
  (void)s.RegisterTxn(1, {kIngestion});
  (void)s.RegisterTxn(2, {kIngestion});
  (void)s.RegisterTxn(3, {kFulfilment});
  (void)s.RegisterTxn(4, {kFulfilment});

  std::printf("ingestion (group G1):\n");
  std::printf("  T1 writes order0        -> %s\n",
              Decide(&s, Op{1, OpType::kWrite, kOrder0}));
  std::printf("  T2 reads order0 (dedup) -> %s\n",
              Decide(&s, Op{2, OpType::kRead, kOrder0}));
  std::printf("  T2 writes order1        -> %s\n",
              Decide(&s, Op{2, OpType::kWrite, kOrder1}));

  std::printf("\nfulfilment (group G2) consumes ingestion output:\n");
  std::printf("  T3 reads order0         -> %s\n",
              Decide(&s, Op{3, OpType::kRead, kOrder0}));
  std::printf("  T3 writes stockA        -> %s\n",
              Decide(&s, Op{3, OpType::kWrite, kStockA}));
  std::printf("  T4 reads order1         -> %s\n",
              Decide(&s, Op{4, OpType::kRead, kOrder1}));
  std::printf("  T4 writes stockB        -> %s\n",
              Decide(&s, Op{4, OpType::kWrite, kStockB}));

  std::printf("\ncurrent tables:\n%s\n", s.DumpTables(4).c_str());

  // The group dependency G1 -> G2 is now fixed. An ingestion transaction
  // reading fulfilment output inside this epoch would invert it:
  std::printf("antisymmetry: T2 (ingestion) tries to read stockA, last\n"
              "written by fulfilment:\n");
  std::printf("  T2 reads stockA         -> %s   (G2 -> G1 forbidden)\n",
              Decide(&s, Op{2, OpType::kRead, kStockA}));

  std::printf("\nwithin-group conflicts stay fine-grained: T1 and T2 were\n"
              "ordered by their own vectors (TS(1) < TS(2)): %s\n",
              VectorLess(s.TxnTs(1), s.TxnTs(2)) ? "yes" : "no");
  std::printf("\nThe same scheduler generalizes to deeper hierarchies\n"
              "(MT(k1,k2,k3) with supergroups) - see "
              "tests/nested_test.cc.\n");
  return 0;
}
