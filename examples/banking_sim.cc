// Banking example: account transfers and balance checks through the
// discrete-event simulator, comparing MT(3) against 2PL and conventional
// timestamp ordering on the exact same transaction mix.
//
// Transfers are read-read-write-write transactions over two accounts;
// audits read a handful of accounts. A few "hot" accounts (merchant
// accounts) attract a disproportionate share of transfers - the situation
// where the paper's multidimensional timestamps shine.
//
//   $ ./build/examples/banking_sim

#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/table_printer.h"
#include "sched/mtk_online.h"
#include "sched/to1_scheduler.h"
#include "sched/two_pl_scheduler.h"
#include "sim/simulator.h"

using namespace mdts;

namespace {

constexpr ItemId kNumAccounts = 32;
constexpr ItemId kNumHot = 3;  // Merchant accounts.

// A transfer: read both balances, then update both.
std::vector<Op> MakeTransfer(Rng* rng) {
  const bool hot = rng->Chance(0.5);
  const ItemId from =
      hot ? static_cast<ItemId>(rng->Uniform(0, kNumHot - 1))
          : static_cast<ItemId>(rng->Uniform(kNumHot, kNumAccounts - 1));
  ItemId to = from;
  while (to == from) {
    to = static_cast<ItemId>(rng->Uniform(0, kNumAccounts - 1));
  }
  return {Op{0, OpType::kRead, from}, Op{0, OpType::kRead, to},
          Op{0, OpType::kWrite, from}, Op{0, OpType::kWrite, to}};
}

// An audit: read several random accounts.
std::vector<Op> MakeAudit(Rng* rng) {
  std::vector<Op> ops;
  const int n = static_cast<int>(rng->Uniform(3, 6));
  for (int i = 0; i < n; ++i) {
    ops.push_back(Op{0, OpType::kRead,
                     static_cast<ItemId>(rng->Uniform(0, kNumAccounts - 1))});
  }
  return ops;
}

}  // namespace

int main() {
  std::printf("=== banking_sim: transfers + audits, 300 transactions ===\n\n");

  // Build the transaction mix once; every scheduler replays the same mix.
  Rng mix_rng(2024);
  std::vector<std::vector<Op>> programs;
  for (int i = 0; i < 300; ++i) {
    programs.push_back(mix_rng.Chance(0.7) ? MakeTransfer(&mix_rng)
                                           : MakeAudit(&mix_rng));
  }

  TablePrinter table({"scheduler", "committed", "aborts", "blocks",
                      "throughput", "avg response"});
  for (int which = 0; which < 4; ++which) {
    std::unique_ptr<Scheduler> s;
    switch (which) {
      case 0: {
        MtkOptions o;
        o.k = 3;
        o.starvation_fix = true;
        s = std::make_unique<MtkOnline>(o);
        break;
      }
      case 1: {
        MtkOptions o;
        o.k = 3;
        o.starvation_fix = true;
        o.thomas_write_rule = true;
        s = std::make_unique<MtkOnline>(o);
        break;
      }
      case 2:
        s = std::make_unique<TwoPlScheduler>();
        break;
      default:
        s = std::make_unique<To1Scheduler>();
    }

    SimOptions options;
    options.programs = programs;
    options.concurrency = 12;
    options.mean_think_time = 1.0;
    options.seed = 99;
    SimResult r = RunSimulation(s.get(), options);
    table.AddRow({s->name(), std::to_string(r.committed),
                  std::to_string(r.aborts), std::to_string(r.block_events),
                  FormatDouble(r.throughput, 3),
                  FormatDouble(r.avg_response_time, 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("All schedulers processed the identical transfer/audit mix;\n"
              "the committed histories are serializable by construction\n"
              "(the property tests audit this continuously).\n");
  return 0;
}
