// Quickstart: the mdts library in five minutes.
//
// Builds the paper's motivating log, schedules it with MT(2), inspects the
// timestamp vectors and the serializability order, and asks the classifier
// which classes the log belongs to.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "classify/classes.h"
#include "classify/hierarchy.h"
#include "core/log.h"
#include "core/mtk_scheduler.h"
#include "core/recognizer.h"

using namespace mdts;

int main() {
  // 1) Parse a log in the paper's notation (or build it with Log::Append).
  Result<Log> parsed = Log::Parse("W1[x] W1[y] R3[x] R2[y] W3[y]");
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const Log& log = parsed.value();
  std::printf("log: %s\n\n", log.ToString().c_str());

  // 2) Schedule it online with the 2-dimensional protocol MT(2).
  MtkOptions options;
  options.k = 2;
  MtkScheduler scheduler(options);
  for (const Op& op : log.ops()) {
    std::printf("  %-6s -> %s\n", OpName(op).c_str(),
                OpDecisionName(scheduler.Process(op)));
  }

  // 3) Inspect the timestamp vectors and the induced serialization order.
  std::printf("\ntimestamp table:\n%s\n", scheduler.DumpTable(3).c_str());
  auto order = scheduler.SerializationOrder({1, 2, 3});
  std::printf("serialization order: T%u T%u T%u\n\n", order[0], order[1],
              order[2]);

  // 4) Class membership: TO(k) via the recognizer, the rest via classify/.
  std::printf("TO(1): %s, TO(2): %s, DSR: %s, 2PL: %s\n",
              IsToK(log, 1) ? "yes" : "no", IsToK(log, 2) ? "yes" : "no",
              IsDsr(log) ? "yes" : "no", IsTwoPl(log) ? "yes" : "no");
  auto membership = ClassifyLog(log);
  if (membership.ok()) {
    std::printf("full signature: %s\n",
                MembershipSignature(*membership).c_str());
  }
  return 0;
}
